"""Tests for Checker-certified checkpoints (TEEcheckpoint + verification)."""

from dataclasses import replace

import pytest

from repro.core.block import genesis_block
from repro.core.commitment import c_combine
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.tee.checker import Checker
from repro.tee.checkpoint import verify_checkpoint
from repro.tee.sealed import SealManager

QUORUM = 2  # f = 1 over 2f+1 = 3 replicas

BLOCK_HASH = b"\x0b" * 32
STATE_ROOT = b"\x0c" * 32


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"checkpoint-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [
        Checker(pid, scheme, directory, genesis.hash, QUORUM) for pid in range(3)
    ]
    return scheme, directory, checkers


def decide_qc(env, view=1, block_hash=BLOCK_HASH):
    """Drive two checkers to a decide certificate (quorum PRECOMMIT)."""
    from repro.core.phases import Phase
    from repro.tee.accumulator import AccumulatorService

    scheme, directory, checkers = env
    accs = AccumulatorService(0, scheme, directory, QUORUM)

    def catch_up(checker):
        while True:
            phi = checker.tee_sign()
            if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
                return phi

    nv0 = catch_up(checkers[0])
    nv1 = catch_up(checkers[1])
    acc = accs.accumulate([nv0, nv1])
    phi0 = checkers[0].tee_prepare(block_hash, acc)
    phi1 = checkers[1].tee_prepare(block_hash, acc)
    combined = c_combine([phi0, phi1])
    pcom0 = checkers[0].tee_store(combined)
    pcom1 = checkers[1].tee_store(combined)
    return c_combine([pcom0, pcom1])


def test_tee_checkpoint_certifies_and_verifies(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    ckpt = checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    assert ckpt.replica == 0
    assert ckpt.counter == 1
    assert ckpt.height == 10
    assert ckpt.view == qc.v_prep
    assert ckpt.block_hash == BLOCK_HASH
    assert ckpt.state_root == STATE_ROOT
    assert checkers[0].checkpoint_height == 10
    assert checkers[0].checkpoint_counter == 1
    # Any replica can verify it against the public directory.
    verify_checkpoint(ckpt, scheme, directory, QUORUM)


def test_tee_checkpoint_counter_is_monotonic(env):
    _, _, checkers = env
    qc = decide_qc(env)
    checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    # Same or lower height: refused, the monotonic height never rewinds.
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(3, BLOCK_HASH, STATE_ROOT, qc)
    ckpt = checkers[0].tee_checkpoint(20, BLOCK_HASH, STATE_ROOT, qc)
    assert ckpt.counter == 2
    assert checkers[0].checkpoint_height == 20


def test_tee_checkpoint_refuses_foreign_qc(env):
    _, _, checkers = env
    qc = decide_qc(env)
    # QC decides a different block than the one being checkpointed.
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(10, b"\x0d" * 32, STATE_ROOT, qc)
    # Sub-quorum certificate: a single pre-commit vote is not a decide.
    single = replace(qc, sigs=qc.sigs[:1])
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, single)


def test_verify_checkpoint_rejects_tampering(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    ckpt = checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    # Height inflated: the Checker signature no longer covers the payload.
    with pytest.raises(TEERefusal):
        verify_checkpoint(replace(ckpt, height=50), scheme, directory, QUORUM)
    # State root swapped: same.
    with pytest.raises(TEERefusal):
        verify_checkpoint(
            replace(ckpt, state_root=b"\x0e" * 32), scheme, directory, QUORUM
        )
    # Signature transplanted from another (authentic) checkpoint.
    other = checkers[0].tee_checkpoint(20, BLOCK_HASH, STATE_ROOT, qc)
    with pytest.raises(TEERefusal):
        verify_checkpoint(
            replace(ckpt, signature=other.signature), scheme, directory, QUORUM
        )


def test_verify_checkpoint_rejects_stripped_quorum(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    ckpt = checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    thinned = replace(ckpt, qc=replace(qc, sigs=qc.sigs[:1]))
    with pytest.raises(TEERefusal):
        verify_checkpoint(thinned, scheme, directory, QUORUM)


def test_checkpoint_state_survives_seal_roundtrip(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    checkers[0].tee_checkpoint(10, BLOCK_HASH, STATE_ROOT, qc)
    manager = SealManager()
    sealed = manager.seal(checkers[0])
    fresh = Checker(0, scheme, directory, genesis_block().hash, QUORUM)
    manager.unseal_into(fresh, sealed)
    assert fresh.checkpoint_counter == 1
    assert fresh.checkpoint_height == 10
    # The restored monotonic floor still refuses stale heights.
    with pytest.raises(TEERefusal):
        fresh.tee_checkpoint(5, BLOCK_HASH, STATE_ROOT, qc)
