"""Tests for the Damysus-A QC-based accumulator."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.messages import NewViewAMsg
from repro.core.phases import Phase
from repro.tee.accumulator import QCAccumulatorService, new_view_a_payload

QUORUM = 3  # 2f+1 with f=1 -> N=4


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"qc-acc-tests")
    directory = KeyDirectory(scheme)
    for pid in range(4):
        directory.register_replica(pid)
    genesis = genesis_block()
    service = QCAccumulatorService(0, scheme, directory, quorum=QUORUM, qc_quorum=QUORUM)
    return scheme, directory, genesis, service


def make_qc(scheme, view, block_hash, signers):
    payload = vote_payload(view, Phase.PREPARE, block_hash)
    return QuorumCert(view, block_hash, Phase.PREPARE, tuple(scheme.sign(s, payload) for s in signers))


def report(scheme, sender, view, qc):
    sig = scheme.sign(sender, new_view_a_payload(view, qc))
    return NewViewAMsg(view, qc, sig)


def test_accumulate_selects_highest_qc(env):
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    fresh = make_qc(scheme, 2, b"\x11" * 32, [0, 1, 2])
    reports = [
        report(scheme, 0, 3, bottom),
        report(scheme, 1, 3, fresh),
        report(scheme, 2, 3, bottom),
    ]
    acc = service.accumulate(reports)
    assert acc.prep_hash == b"\x11" * 32
    assert acc.prep_view == 2
    assert acc.made_in_view == 3
    assert acc.count == QUORUM


def test_accumulate_rejects_duplicate_reporters(env):
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    reports = [report(scheme, 0, 3, bottom) for _ in range(3)]
    with pytest.raises(TEERefusal):
        service.accumulate(reports)


def test_accumulate_rejects_bad_report_signature(env):
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    good = report(scheme, 0, 3, bottom)
    forged = NewViewAMsg(3, bottom, scheme.sign(1, b"wrong payload"))
    with pytest.raises(TEERefusal):
        service.accumulate([good, forged, report(scheme, 2, 3, bottom)])


def test_accumulate_rejects_overstated_fake_qc(env):
    """A Byzantine overstatement with an invalid certificate is caught."""
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    fake = make_qc(scheme, 99, b"\x66" * 32, [0])  # only one signature
    reports = [
        report(scheme, 0, 3, bottom),
        report(scheme, 1, 3, fake),  # claims the max, QC invalid
        report(scheme, 2, 3, bottom),
    ]
    with pytest.raises(TEERefusal):
        service.accumulate(reports)


def test_accumulate_rejects_cross_view_reports(env):
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    reports = [
        report(scheme, 0, 3, bottom),
        report(scheme, 1, 4, bottom),
        report(scheme, 2, 3, bottom),
    ]
    with pytest.raises(TEERefusal):
        service.accumulate(reports)


def test_accumulate_rejects_wrong_cardinality(env):
    scheme, _, genesis, service = env
    bottom = genesis_qc(genesis.hash)
    with pytest.raises(TEERefusal):
        service.accumulate([report(scheme, 0, 3, bottom)])


def test_accumulate_rejects_tee_signed_reports(env):
    """Reports must come from replica identities, not TEEs."""
    scheme, directory, genesis, service = env
    directory.register_tee(0)
    from repro.crypto.keys import tee_signer_id

    bottom = genesis_qc(genesis.hash)
    tee_sig = scheme.sign(tee_signer_id(0), new_view_a_payload(3, bottom))
    bad = NewViewAMsg(3, bottom, tee_sig)
    with pytest.raises(TEERefusal):
        service.accumulate([bad, report(scheme, 1, 3, bottom), report(scheme, 2, 3, bottom)])
