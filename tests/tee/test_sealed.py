"""Tests for sealed storage and restart/rollback protection."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.phases import Phase
from repro.tee.checker import Checker
from repro.tee.sealed import SealManager


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"seal-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()

    def new_checker(pid=0):
        return Checker(pid, scheme, directory, genesis.hash, quorum=2)

    return new_checker, SealManager()


def advance(checker, signs):
    for _ in range(signs):
        checker.tee_sign()


def test_seal_unseal_restores_state(env):
    new_checker, manager = env
    original = new_checker()
    advance(original, 7)
    sealed = manager.seal(original)
    restarted = new_checker()
    manager.unseal_into(restarted, sealed)
    assert restarted.step == original.step
    assert restarted.prepared_view == original.prepared_view
    assert restarted.prepared_hash == original.prepared_hash


def test_restored_checker_never_repeats_stamps(env):
    """The critical property: a restart cannot rewind the step counter."""
    new_checker, manager = env
    original = new_checker()
    stamps = set()
    for _ in range(5):
        phi = original.tee_sign()
        stamps.add((phi.v_prep, phi.phase))
    sealed = manager.seal(original)
    restarted = new_checker()
    manager.unseal_into(restarted, sealed)
    for _ in range(5):
        phi = restarted.tee_sign()
        assert (phi.v_prep, phi.phase) not in stamps


def test_rollback_to_older_seal_rejected(env):
    new_checker, manager = env
    checker = new_checker()
    advance(checker, 2)
    old_seal = manager.seal(checker)
    advance(checker, 4)
    manager.seal(checker)  # newer seal bumps the latest counter
    restarted = new_checker()
    with pytest.raises(TEERefusal):
        manager.unseal_into(restarted, old_seal)


def test_tampered_seal_rejected(env):
    from dataclasses import replace

    new_checker, manager = env
    checker = new_checker()
    advance(checker, 3)
    sealed = manager.seal(checker)
    # Try to rewind the sealed step by editing the payload.
    forged_payload = sealed.payload.replace(b"|1|", b"|0|", 1)
    forged = replace(sealed, payload=forged_payload)
    restarted = new_checker()
    with pytest.raises(TEERefusal):
        manager.unseal_into(restarted, forged)


def test_repeated_crash_recover_cycles_stay_monotone(env):
    """Each cycle seals, restarts and unseals; every older seal dies."""
    new_checker, manager = env
    checker = new_checker()
    older_seals = []
    for _ in range(4):
        advance(checker, 2)
        sealed = manager.seal(checker)
        restarted = new_checker()
        manager.unseal_into(restarted, sealed)
        assert restarted.step == checker.step
        checker = restarted
        older_seals.append(sealed)
    # Every seal but the newest is now a rollback.
    for stale in older_seals[:-1]:
        with pytest.raises(TEERefusal):
            manager.unseal_into(new_checker(), stale)
    # The newest one still restores (unseal does not consume it).
    manager.unseal_into(new_checker(), older_seals[-1])


def test_recovered_checker_refuses_resigning_passed_steps(env):
    """Across repeated cycles, no (view, phase) stamp ever repeats."""
    new_checker, manager = env
    checker = new_checker()
    stamps = set()
    for _ in range(3):
        for _ in range(4):
            phi = checker.tee_sign()
            stamp = (phi.v_prep, phi.phase)
            assert stamp not in stamps
            stamps.add(stamp)
        restarted = new_checker()
        manager.unseal_into(restarted, manager.seal(checker))
        checker = restarted


def test_locking_checker_lock_state_survives_sealing():
    from repro.tee.checker_lock import LockingChecker

    scheme = HmacScheme(secret=b"seal-lock-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    manager = SealManager()

    def new_locking():
        return LockingChecker(5, scheme, directory, genesis.hash, quorum=2)

    locking = new_locking()
    advance(locking, 3)
    sealed = manager.seal(locking)
    restarted = new_locking()
    manager.unseal_into(restarted, sealed)
    assert restarted.step == locking.step
    assert restarted.locked_view == locking.locked_view
    assert restarted.locked_hash == locking.locked_hash


def test_cross_component_seal_rejected(env):
    new_checker, manager = env
    checker_a = new_checker(0)
    checker_b = new_checker(1)
    sealed = manager.seal(checker_a)
    with pytest.raises(TEERefusal):
        manager.unseal_into(checker_b, sealed)


def test_seal_preserves_prepared_block(env):
    new_checker, manager = env
    checker = new_checker()
    # Simulate a stored prepared block by driving the real flow at view 1
    # is heavyweight here; poke the state through a legitimate seal cycle
    # instead: seal captures whatever the checker currently holds.
    sealed = manager.seal(checker)
    restarted = new_checker()
    manager.unseal_into(restarted, sealed)
    assert restarted.prepared_hash == checker.prepared_hash
    nv = restarted.tee_sign()
    assert nv.phase == Phase.NEW_VIEW
    assert nv.h_just == checker.prepared_hash
