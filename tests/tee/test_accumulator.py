"""Tests for the Accumulator trusted service (Fig 2b)."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory, tee_signer_id
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.phases import Phase
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import Checker

QUORUM = 3  # f = 2 over 2f+1 = 5 replicas


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"acc-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [Checker(p, scheme, directory, genesis.hash, QUORUM) for p in range(5)]
    service = AccumulatorService(0, scheme, directory, QUORUM)
    return scheme, directory, genesis, checkers, service


def nv(checker, view=1):
    while True:
        phi = checker.tee_sign()
        if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
            return phi


def test_tee_start_registers_reporter(env):
    _, _, genesis, checkers, service = env
    phi = nv(checkers[0])
    acc = service.tee_start(phi)
    assert acc.ids == (tee_signer_id(0),)
    assert acc.made_in_view == 1
    assert acc.prep_view == 0
    assert acc.prep_hash == genesis.hash
    assert not acc.finalized


def test_tee_start_rejects_non_new_view(env):
    _, _, _, checkers, service = env
    phi = checkers[0].tee_sign()  # (0, nv_p)
    prepare_stamped = checkers[0].tee_sign()  # (0, prep_p)
    assert prepare_stamped.phase == Phase.PREPARE
    with pytest.raises(TEERefusal):
        service.tee_start(prepare_stamped)


def test_tee_accum_extends_and_tracks_ids(env):
    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0]))
    acc = service.tee_accum(acc, nv(checkers[1]))
    acc = service.tee_accum(acc, nv(checkers[2]))
    assert set(acc.ids) == {tee_signer_id(p) for p in range(3)}
    assert len(acc) == 3


def test_tee_accum_rejects_duplicate_node(env):
    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0]))
    acc = service.tee_accum(acc, nv(checkers[1], view=1))
    # checker 1 can produce another commitment, but only for a later view.
    later = nv(checkers[1], view=2)
    with pytest.raises(TEERefusal):
        service.tee_accum(acc, later)  # wrong view AND duplicate node


def test_tee_accum_rejects_higher_prepared_block(env):
    """The definitional guard: accumulated block must stay the highest."""
    scheme, directory, genesis, checkers, service = env
    from repro.core.commitment import c_combine

    # Drive checkers 3 and 4 (and 2) to prepare a block in view 1.
    nvs = [nv(checkers[p], 1) for p in range(5)]
    acc1 = service.accumulate(nvs[:QUORUM])
    phis = [checkers[p].tee_prepare(b"\x0d" * 32, acc1) for p in (2, 3, 4)]
    combined = c_combine(phis)
    for p in (2, 3, 4):
        checkers[p].tee_store(combined)
    # View 2: checker 0 reports genesis, checker 2 reports the new block.
    stale = nv(checkers[0], 2)
    fresh = nv(checkers[2], 2)
    acc = service.tee_start(stale)
    with pytest.raises(TEERefusal):
        service.tee_accum(acc, fresh)
    # Starting from the fresh one and accumulating the stale one is fine.
    acc = service.tee_accum(service.tee_start(fresh), stale)
    assert acc.prep_hash == b"\x0d" * 32


def test_tee_accum_rejects_cross_view_mix(env):
    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0], 1))
    with pytest.raises(TEERefusal):
        service.tee_accum(acc, nv(checkers[1], 2))


def test_tee_finalize_replaces_ids_with_count(env):
    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0]))
    acc = service.tee_accum(acc, nv(checkers[1]))
    final = service.tee_finalize(acc)
    assert final.finalized
    assert final.count == 2
    assert final.ids is None
    assert final.verify(service._scheme)  # noqa: SLF001 - test introspection


def test_tee_finalize_rejects_double_finalize(env):
    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0]))
    final = service.tee_finalize(acc)
    with pytest.raises(TEERefusal):
        service.tee_finalize(final)


def test_tee_accum_rejects_tampered_accumulator(env):
    from dataclasses import replace

    _, _, _, checkers, service = env
    acc = service.tee_start(nv(checkers[0]))
    tampered = replace(acc, prep_view=99)
    with pytest.raises(TEERefusal):
        service.tee_accum(tampered, nv(checkers[1]))


def test_accumulate_selects_highest(env):
    """The accumList loop picks the max; the result certifies exactly it."""
    scheme, directory, genesis, checkers, service = env
    from repro.core.commitment import c_combine

    nvs1 = [nv(checkers[p], 1) for p in range(5)]
    acc1 = service.accumulate(nvs1[:QUORUM])
    phis = [checkers[p].tee_prepare(b"\x0e" * 32, acc1) for p in (0, 1, 2)]
    combined = c_combine(phis)
    for p in (0, 1, 2):
        checkers[p].tee_store(combined)
    reports = [nv(checkers[p], 2) for p in (0, 3, 4)]  # one fresh, two stale
    acc2 = service.accumulate(reports)
    assert acc2.prep_hash == b"\x0e" * 32
    assert acc2.prep_view == 1
    assert acc2.count == QUORUM


def test_accumulate_rejects_wrong_cardinality(env):
    _, _, _, checkers, service = env
    with pytest.raises(TEERefusal):
        service.accumulate([nv(checkers[0])])


def test_accumulator_size_definition(env):
    """|acc| is the number of contributing nodes (Section 6.2)."""
    _, _, _, checkers, service = env
    nvs = [nv(checkers[p]) for p in range(3)]
    final = service.accumulate(nvs)
    assert len(final) == 3
