"""Tests for the TrInc-style trusted counter."""

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory, tee_signer_id
from repro.tee.counter import TrustedCounter, verify_counter_certificate


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"counter-tests")
    directory = KeyDirectory(scheme)
    counters = [TrustedCounter(p, scheme, directory) for p in range(2)]
    return scheme, directory, counters


def test_values_strictly_increase(env):
    _, _, counters = env
    values = [counters[0].attest(sha256(bytes([i]))).value for i in range(10)]
    assert values == list(range(1, 11))


def test_certificate_verifies(env):
    scheme, directory, counters = env
    cert = counters[0].attest(sha256(b"m"))
    assert verify_counter_certificate(scheme, directory, cert)
    assert counters[1].verify_certificate(cert)


def test_certificate_binds_message(env):
    from dataclasses import replace

    scheme, directory, counters = env
    cert = counters[0].attest(sha256(b"m"))
    forged = replace(cert, message_digest=sha256(b"other"))
    assert not verify_counter_certificate(scheme, directory, forged)


def test_certificate_binds_value(env):
    from dataclasses import replace

    scheme, directory, counters = env
    cert = counters[0].attest(sha256(b"m"))
    forged = replace(cert, value=cert.value + 5)
    assert not verify_counter_certificate(scheme, directory, forged)


def test_component_id_must_match_signer(env):
    from dataclasses import replace

    scheme, directory, counters = env
    cert = counters[0].attest(sha256(b"m"))
    forged = replace(cert, component_id=tee_signer_id(1))
    assert not verify_counter_certificate(scheme, directory, forged)


def test_replica_signature_rejected(env):
    """Only TEE identities can attest counter values."""
    from dataclasses import replace

    scheme, directory, counters = env
    directory.register_replica(0)
    cert = counters[0].attest(sha256(b"m"))
    replica_sig = scheme.sign(0, cert.signed_payload())
    forged = replace(cert, signature=replica_sig)
    assert not verify_counter_certificate(scheme, directory, forged)


def test_reading_value_does_not_consume(env):
    _, _, counters = env
    counters[0].attest(sha256(b"m"))
    assert counters[0].value == 1
    assert counters[0].value == 1
