"""Tests for the Damysus-C LockingChecker (prepared + locked storage)."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.commitment import c_combine
from repro.core.phases import Phase, StepRule
from repro.tee.checker_lock import LockingChecker

QUORUM = 2


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"lock-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [
        LockingChecker(p, scheme, directory, genesis.hash, QUORUM) for p in range(3)
    ]
    return scheme, directory, genesis, checkers


def nv(checker, view=1):
    while True:
        phi = checker.tee_sign()
        if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
            return phi


def run_view(checkers, view, block_hash, participants=(0, 1)):
    """Drive the given checkers through one full Damysus-C view.

    Quorum certificates always carry exactly QUORUM signatures even when
    more participants take part (extra votes are simply unused).
    """
    nvs = {p: nv(checkers[p], view) for p in participants}
    justify = max(nvs.values(), key=lambda phi: phi.v_just)
    prep = [
        checkers[p].tee_prepare_locked(block_hash, justify) for p in participants
    ]
    prep_qc = c_combine(prep[:QUORUM])
    pcom = [checkers[p].tee_store(prep_qc) for p in participants]
    pcom_qc = c_combine(pcom[:QUORUM])
    com = [checkers[p].tee_store(pcom_qc) for p in participants]
    return justify, prep_qc, pcom_qc, c_combine(com[:QUORUM])


def test_four_steps_per_view(env):
    _, _, _, checkers = env
    checker = checkers[0]
    assert checker.step_rule == StepRule.THREE_PHASE
    stamps = []
    for _ in range(5):
        phi = checker.tee_sign()
        stamps.append((phi.v_prep, phi.phase))
    assert stamps == [
        (0, Phase.NEW_VIEW),
        (0, Phase.PREPARE),
        (0, Phase.PRECOMMIT),
        (0, Phase.COMMIT),
        (1, Phase.NEW_VIEW),
    ]


def test_full_view_updates_prepared_and_locked(env):
    _, _, _, checkers = env
    block_hash = b"\x0f" * 32
    run_view(checkers, 1, block_hash)
    for p in (0, 1):
        assert checkers[p].prepared_hash == block_hash
        assert checkers[p].prepared_view == 1
        assert checkers[p].locked_hash == block_hash
        assert checkers[p].locked_view == 1


def test_commit_vote_phase(env):
    _, _, _, checkers = env
    *_, com_qc = run_view(checkers, 1, b"\x0f" * 32)
    assert com_qc.phase == Phase.COMMIT
    assert com_qc.v_prep == 1


def test_safenode_rejects_stale_justification(env):
    """Once locked, a proposal justified below the lock is refused in-TEE."""
    _, _, genesis, checkers = env
    run_view(checkers, 1, b"\x0f" * 32, participants=(0, 1))
    # Checker 2 lagged; its new-view still names genesis (view 0).
    stale_justify = nv(checkers[2], 2)
    assert stale_justify.v_just == 0
    for p in (0, 1):
        nv(checkers[p], 2)  # advance to view 2's prepare step
        with pytest.raises(TEERefusal):
            checkers[p].tee_prepare_locked(b"\x1f" * 32, stale_justify)


def test_safenode_accepts_matching_lock(env):
    """A proposal extending the locked block itself is accepted."""
    _, _, _, checkers = env
    block_hash = b"\x0f" * 32
    run_view(checkers, 1, block_hash, participants=(0, 1))
    justify = nv(checkers[0], 2)  # names the locked block
    nv(checkers[1], 2)
    phi = checkers[1].tee_prepare_locked(b"\x1f" * 32, justify)
    assert phi.phase == Phase.PREPARE


def test_safenode_accepts_higher_view_justification(env):
    """Liveness rule: a justification above the lock unlocks the node."""
    _, _, _, checkers = env
    # Views 1 and 2 run with {0, 1}; checker 2 only locked view 1.
    run_view(checkers, 1, b"\x0f" * 32, participants=(0, 1, 2))
    run_view(checkers, 2, b"\x2f" * 32, participants=(0, 1))
    # Checker 2 is locked at view 1; checker 0's report names view 2 > 1.
    fresh_justify = nv(checkers[0], 3)
    assert fresh_justify.v_just == 2
    nv(checkers[2], 3)
    phi = checkers[2].tee_prepare_locked(b"\x3f" * 32, fresh_justify)
    assert phi.phase == Phase.PREPARE
    assert checkers[2].locked_view == 1  # lock unchanged until pre-commit


def test_prepare_rejects_justification_for_other_view(env):
    _, _, _, checkers = env
    justify = nv(checkers[0], 1)
    nv(checkers[1], 1)
    nv(checkers[1], 2)  # checker 1 is now at view 2
    with pytest.raises(TEERefusal):
        checkers[1].tee_prepare_locked(b"\x1f" * 32, justify)


def test_store_rejects_commit_quorum(env):
    _, _, _, checkers = env
    *_, com_qc = run_view(checkers, 1, b"\x0f" * 32)
    with pytest.raises(TEERefusal):
        checkers[2].tee_store(com_qc)  # COMMIT phase is not storable
