"""Tests for the Damysus Checker trusted service (Fig 2b)."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.commitment import c_combine
from repro.core.phases import Phase, Step
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import Checker

QUORUM = 2  # f = 1 over 2f+1 = 3 replicas


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"checker-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [
        Checker(pid, scheme, directory, genesis.hash, QUORUM) for pid in range(3)
    ]
    accs = [
        AccumulatorService(pid, scheme, directory, QUORUM) for pid in range(3)
    ]
    return scheme, directory, genesis, checkers, accs


def catch_up(checker, view):
    """TEEsign until a (view, nv_p) commitment comes out."""
    while True:
        phi = checker.tee_sign()
        if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
            return phi


def prepare_view_1(env, block_hash=b"\x0b" * 32):
    """Drive checkers 0 and 1 through view 1's prepare + store."""
    scheme, directory, genesis, checkers, accs = env
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    acc = accs[0].accumulate([nv0, nv1])
    phi0 = checkers[0].tee_prepare(block_hash, acc)
    phi1 = checkers[1].tee_prepare(block_hash, acc)
    combined = c_combine([phi0, phi1])
    pcom0 = checkers[0].tee_store(combined)
    pcom1 = checkers[1].tee_store(combined)
    return acc, combined, pcom0, pcom1


def test_initial_state(env):
    _, _, genesis, checkers, _ = env
    checker = checkers[0]
    assert checker.step == Step(0, Phase.NEW_VIEW)
    assert checker.prepared_view == 0
    assert checker.prepared_hash == genesis.hash


def test_tee_sign_reports_stored_prepared_block(env):
    _, _, genesis, checkers, _ = env
    phi = checkers[0].tee_sign()
    assert phi.h_prep is None  # only usable as a new-view commitment
    assert phi.h_just == genesis.hash
    assert phi.v_just == 0
    assert phi.phase == Phase.NEW_VIEW


def test_steps_advance_monotonically(env):
    _, _, _, checkers, _ = env
    checker = checkers[0]
    stamps = []
    for _ in range(6):
        phi = checker.tee_sign()
        stamps.append((phi.v_prep, phi.phase))
    assert stamps == [
        (0, Phase.NEW_VIEW),
        (0, Phase.PREPARE),
        (0, Phase.PRECOMMIT),
        (1, Phase.NEW_VIEW),
        (1, Phase.PREPARE),
        (1, Phase.PRECOMMIT),
    ]


def test_no_two_commitments_share_a_step(env):
    """The no-equivocation core: every signature is for a unique step."""
    _, _, _, checkers, _ = env
    checker = checkers[0]
    seen = set()
    for _ in range(20):
        phi = checker.tee_sign()
        stamp = (phi.v_prep, phi.phase)
        assert stamp not in seen
        seen.add(stamp)


def test_full_view_flow_updates_prepared(env):
    _, _, _, checkers, _ = env
    block_hash = b"\x0b" * 32
    prepare_view_1(env, block_hash)
    assert checkers[0].prepared_hash == block_hash
    assert checkers[0].prepared_view == 1
    # New-view commitments now relay the stored block.
    nv = catch_up(checkers[0], 2)
    assert nv.h_just == block_hash
    assert nv.v_just == 1


def test_tee_prepare_rejects_wrong_view_accumulator(env):
    scheme, directory, genesis, checkers, accs = env
    acc, _, _, _ = prepare_view_1(env)
    # checkers[2] never advanced: its view is 0, the accumulator's is 1...
    with pytest.raises(TEERefusal):
        checkers[2].tee_prepare(b"\x0c" * 32, acc)
    # ...and a checker already past view 1 also refuses it.
    catch_up(checkers[0], 2)
    with pytest.raises(TEERefusal):
        checkers[0].tee_prepare(b"\x0c" * 32, acc)


def test_tee_prepare_rejects_bottom_hash(env):
    scheme, directory, genesis, checkers, accs = env
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    acc = accs[0].accumulate([nv0, nv1])
    with pytest.raises(TEERefusal):
        checkers[0].tee_prepare(None, acc)


def test_tee_prepare_rejects_unfinalized_accumulator(env):
    scheme, directory, genesis, checkers, accs = env
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    working = accs[0].tee_accum(accs[0].tee_start(nv0), nv1)
    with pytest.raises(TEERefusal):
        checkers[0].tee_prepare(b"\x0c" * 32, working)


def test_tee_prepare_rejects_forged_accumulator(env):
    """An accumulator signed by a replica key (not a TEE) is refused."""
    scheme, directory, genesis, checkers, accs = env
    directory.register_replica(0)
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    acc = accs[0].accumulate([nv0, nv1])
    from dataclasses import replace

    forged_sig = scheme.sign(0, acc.signed_payload())  # replica 0's key
    forged = replace(acc, signature=forged_sig)
    with pytest.raises(TEERefusal):
        checkers[1].tee_prepare(b"\x0c" * 32, forged)


def test_tee_store_rejects_undersized_quorum(env):
    scheme, directory, genesis, checkers, accs = env
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    acc = accs[0].accumulate([nv0, nv1])
    phi0 = checkers[0].tee_prepare(b"\x0b" * 32, acc)
    with pytest.raises(TEERefusal):
        checkers[1].tee_store(phi0)  # single signature, need QUORUM


def test_tee_store_rejects_wrong_phase(env):
    _, _, _, checkers, _ = env
    _, _, pcom0, pcom1 = prepare_view_1(env)
    combined_pcom = c_combine([pcom0, pcom1])
    # A pre-commit quorum cannot be stored as if it were a prepare quorum:
    # the checkers are already past view 1 anyway, but also phase-wrong.
    with pytest.raises(TEERefusal):
        checkers[2].tee_store(combined_pcom)


def test_tee_store_emits_precommit_vote(env):
    _, _, _, checkers, _ = env
    _, combined, pcom0, _ = prepare_view_1(env)
    assert pcom0.phase == Phase.PRECOMMIT
    assert pcom0.h_prep == combined.h_prep
    assert pcom0.v_prep == 1
    assert pcom0.h_just is None and pcom0.v_just is None


def test_checker_cannot_be_made_to_lie(env):
    """After storing a block, every future TEEsign names it (or a newer one)."""
    _, _, genesis, checkers, _ = env
    block_hash = b"\x0b" * 32
    prepare_view_1(env, block_hash)
    for _ in range(9):
        phi = checkers[0].tee_sign()
        if phi.phase == Phase.NEW_VIEW:
            assert phi.h_just == block_hash
            assert phi.v_just == 1


def test_second_prepare_same_view_burns_phase(env):
    """Equivocation attempt: the second prepare is stamped pcom_p."""
    scheme, directory, genesis, checkers, accs = env
    nv0 = catch_up(checkers[0], 1)
    nv1 = catch_up(checkers[1], 1)
    acc = accs[0].accumulate([nv0, nv1])
    first = checkers[0].tee_prepare(b"\x0b" * 32, acc)
    second = checkers[0].tee_prepare(b"\x0c" * 32, acc)
    assert first.phase == Phase.PREPARE
    assert second.phase == Phase.PRECOMMIT  # unusable as a prepare vote
    # And the two commitments sign different payloads.
    assert first.signed_payload() != second.signed_payload()
