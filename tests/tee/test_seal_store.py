"""Tests for the durable seal store: atomicity, counters, rollback floor."""

import json

import pytest

from repro.core.block import genesis_block
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.tee.checker import Checker
from repro.tee.sealed import FileSealStore, SealManager


@pytest.fixture
def checker_factory():
    scheme = HmacScheme(secret=b"seal-store-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()

    def make(pid=0):
        return Checker(pid, scheme, directory, genesis.hash, quorum=2)

    return make


def test_save_load_roundtrip(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    manager = SealManager()
    checker = checker_factory()
    checker.tee_sign()
    sealed = manager.seal(checker)
    store.save(sealed)
    assert store.load(checker.component_id) == sealed
    assert store.load_counter(checker.component_id) == sealed.seal_counter


def test_load_missing_component_returns_none(tmp_path):
    store = FileSealStore(tmp_path)
    assert store.load(123) is None
    assert store.load_counter(123) == 0


def test_counter_record_never_regresses(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    manager = SealManager()
    checker = checker_factory()
    first = manager.seal(checker)
    second = manager.seal(checker)
    store.save(second)
    store.save(first)  # late write of an older seal
    # The snapshot file may hold the older seal, but the trusted counter
    # record keeps the high-water mark - that is what refuses rollback.
    assert store.load_counter(checker.component_id) == second.seal_counter


def test_prime_manager_installs_the_durable_floor(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    manager = SealManager()
    checker = checker_factory()
    old = manager.seal(checker)
    new = manager.seal(checker)
    store.save(old)
    store.save(new)

    # A fresh platform (fresh manager, as after SIGKILL + restart) primed
    # from the durable record refuses the stale snapshot...
    fresh_manager = SealManager()
    store.prime_manager(fresh_manager, checker.component_id)
    restarted = checker_factory()
    with pytest.raises(TEERefusal, match="rollback"):
        fresh_manager.unseal_into(restarted, old)
    # ...but accepts the latest one.
    fresh_manager.unseal_into(restarted, new)


def test_unprimed_fresh_manager_would_accept_the_rollback(tmp_path, checker_factory):
    """The control case: without the durable counter record, a fresh
    manager cannot tell the snapshots apart - which is exactly why
    ``restore`` primes before unsealing."""
    manager = SealManager()
    checker = checker_factory()
    old = manager.seal(checker)
    manager.seal(checker)
    naive = SealManager()  # restart without reading the counter record
    restarted = checker_factory()
    naive.unseal_into(restarted, old)  # accepted: the floor was lost


def test_corrupt_snapshot_raises_refusal(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    checker = checker_factory()
    store.save(SealManager().seal(checker))
    store.seal_path(checker.component_id).write_text("{not json")
    with pytest.raises(TEERefusal, match="corrupt"):
        store.load(checker.component_id)


def test_corrupt_counter_raises_refusal(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    checker = checker_factory()
    store.save(SealManager().seal(checker))
    store.counter_path(checker.component_id).write_text('{"latest": "zebra"}')
    with pytest.raises(TEERefusal, match="corrupt"):
        store.load_counter(checker.component_id)


def test_atomic_write_leaves_no_temp_files(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    manager = SealManager()
    checker = checker_factory()
    for _ in range(5):
        checker.tee_sign()
        store.save(manager.seal(checker))
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
    assert leftovers == []


def test_components_are_isolated(tmp_path, checker_factory):
    store = FileSealStore(tmp_path)
    manager = SealManager()
    a, b = checker_factory(0), checker_factory(1)
    sealed_a = manager.seal(a)
    sealed_b = manager.seal(b)
    store.save(sealed_a)
    store.save(sealed_b)
    assert store.load(a.component_id) == sealed_a
    assert store.load(b.component_id) == sealed_b


def test_snapshot_files_are_json_with_counter(tmp_path, checker_factory):
    """The on-disk format is inspectable: plain JSON naming the counter
    (operators can audit what a replica will restore)."""
    store = FileSealStore(tmp_path)
    checker = checker_factory()
    sealed = SealManager().seal(checker)
    store.save(sealed)
    data = json.loads(store.seal_path(checker.component_id).read_text())
    assert data["seal_counter"] == sealed.seal_counter
    assert bytes.fromhex(data["mac"]) == sealed.mac
