"""Liveness and memory bounds under a flooding adversary."""

from repro.adversary.flooding import FloodingDamysusReplica
from repro.protocols.replica import MAX_BUFFERED_MESSAGES
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def flooded_system():
    return ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=300),
        replica_overrides={2: FloodingDamysusReplica},
    )


def test_progress_despite_flood():
    system = flooded_system()
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4


def test_buffers_stay_bounded():
    system = flooded_system()
    system.run_until_views(4, max_time_ms=300_000)
    for replica in system.replicas:
        if replica.pid == 2:
            continue
        assert replica._buffered_count <= MAX_BUFFERED_MESSAGES


def test_junk_never_reaches_protocol_handlers():
    """Flood messages are for far-future views: buffered or dropped, and
    the junk signature would fail TEE verification anyway."""
    system = flooded_system()
    system.run_until_views(3, max_time_ms=300_000)
    for replica in system.replicas:
        if replica.pid == 2:
            continue
        # No honest replica advanced anywhere near the junk views.
        assert replica.view < 100
