"""Liveness under silent (never-proposing) leaders."""

from repro.adversary.behaviors import SilentLeaderDamysus, SilentLeaderHotStuff
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def test_hotstuff_progresses_past_silent_leader():
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=250),
        replica_overrides={1: SilentLeaderHotStuff},
    )
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4


def test_damysus_progresses_past_silent_leader():
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={1: SilentLeaderDamysus},
    )
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4


def test_silent_leader_views_time_out():
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={1: SilentLeaderDamysus},
    )
    system.run_until_views(4, max_time_ms=300_000)
    assert any(r.pacemaker.timeouts_fired > 0 for r in system.replicas)
