"""Tests for the adversary registry (name -> spec lookup and seating)."""

import math

import pytest

from repro.adversary import ADVERSARIES, adversary_names, get_adversary
from repro.errors import ConfigError
from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.registry import get_spec

_BASES = {"damysus": DamysusReplica, "hotstuff": HotStuffReplica}


def test_all_expected_attacks_are_registered():
    assert adversary_names() == sorted(ADVERSARIES)
    assert set(adversary_names()) >= {
        "silent",
        "equivocate",
        "stale",
        "flood",
        "slow-drip",
        "withhold",
        "partition",
        "sync-forge",
        "amnesia",
        "spam",
    }


def test_unknown_name_raises_config_error():
    with pytest.raises(ConfigError, match="unknown adversary"):
        get_adversary("nope")


def test_unsupported_protocol_raises_config_error():
    amnesia = get_adversary("amnesia")  # TEE rollback: Damysus-only
    assert not amnesia.supports("hotstuff")
    with pytest.raises(ConfigError, match="does not support"):
        amnesia.replica_class("hotstuff")


def test_classes_subclass_the_honest_protocol_replicas():
    """Adversaries are sans-I/O Machines: same base class, any runtime."""
    for spec in ADVERSARIES.values():
        for protocol, cls in spec.classes.items():
            assert issubclass(cls, _BASES[protocol]), (spec.name, protocol)


@pytest.mark.parametrize("f", [1, 2])
def test_seats_are_valid_and_within_the_fault_bound(f):
    for spec in ADVERSARIES.values():
        for protocol in spec.classes:
            n = get_spec(protocol).num_replicas(f)
            seats = spec.seats(n, f)
            assert seats, spec.name
            assert len(seats) <= f
            assert len(set(seats)) == len(seats)
            assert all(0 <= pid < n for pid in seats)


def test_withhold_takes_a_full_coalition():
    assert get_adversary("withhold").seats(7, 2) == (1, 2)


def test_partition_colluder_is_never_its_own_victim():
    from repro.adversary.targeted_partition import victim_pids

    spec = get_adversary("partition")
    for n, f in ((3, 1), (4, 1), (7, 2)):
        (colluder,) = spec.seats(n, f)
        assert colluder not in victim_pids(n, f)


def test_colluding_plans_always_heal():
    """Every bundled fault plan ends, so liveness-after-heal is scorable."""
    for spec in ADVERSARIES.values():
        if spec.colluding_plan is None:
            continue
        plan = spec.colluding_plan(4, 1)
        assert math.isfinite(plan.healed_by_ms()), spec.name


def test_event_extractors_read_zero_off_a_blank_object():
    """Extractors sum counters defensively: absent attributes count as 0."""

    class Blank:
        pass

    for spec in ADVERSARIES.values():
        assert spec.events(Blank()) == 0
