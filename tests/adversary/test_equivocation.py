"""Safety under equivocating leaders."""


from repro.adversary.equivocation import (
    EquivocatingDamysusLeader,
    EquivocatingHotStuffLeader,
)
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def test_hotstuff_survives_equivocating_leader():
    """Quorum intersection tolerates equivocation at 3f+1 (no TEE needed)."""
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=250),
        replica_overrides={1: EquivocatingHotStuffLeader},
    )
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    byzantine = system.replicas[1]
    assert byzantine.equivocations > 0  # the attack actually ran


def test_hotstuff_equivocated_views_do_not_commit_twice():
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=250),
        replica_overrides={1: EquivocatingHotStuffLeader},
    )
    system.run_until_views(4, max_time_ms=300_000)
    # No view may have more than one executed block.
    views = [rec.view for rec in system.monitor.executions]
    blocks_per_view = {}
    for rec in system.monitor.executions:
        blocks_per_view.setdefault(rec.view, set()).add(rec.block_hash)
    assert all(len(blocks) == 1 for blocks in blocks_per_view.values())


def test_damysus_checker_blocks_equivocation():
    """The second TEEprepare yields an unusable certificate (Section 6.5)."""
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={1: EquivocatingDamysusLeader},
    )
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    byzantine = system.replicas[1]
    assert byzantine.failed_equivocations > 0
    assert result.committed_blocks >= 4


def test_damysus_equivocating_leader_cannot_fork_executions():
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={1: EquivocatingDamysusLeader},
    )
    system.run_until_views(4, max_time_ms=300_000)
    blocks_per_view = {}
    for rec in system.monitor.executions:
        blocks_per_view.setdefault(rec.view, set()).add(rec.block_hash)
    assert all(len(blocks) == 1 for blocks in blocks_per_view.values())
