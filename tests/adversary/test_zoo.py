"""The newer zoo residents: drip, withhold, partition, forge, amnesia, spam.

Each test seats the adversary exactly the way ``repro campaign`` would
(same seats, same colluding fault plan) and asserts three things: the
run stays safe, the attack demonstrably fired (its event counters moved),
and the defending component bounded the damage.
"""

from repro.adversary.amnesia import AmnesiaDamysusReplica
from repro.adversary.slow_drip import SlowDripDamysusLeader, SlowDripHotStuffLeader
from repro.adversary.spammer import (
    MempoolSpammerDamysusReplica,
    MempoolSpammerHotStuffReplica,
)
from repro.adversary.sync_server import ByzantineSyncServerDamysus
from repro.adversary.targeted_partition import (
    ATTACK_END_MS,
    TargetedPartitionDamysusReplica,
    leader_isolation_plan,
    victim_pids,
)
from repro.adversary.withholding import (
    VoteWithholdingDamysusReplica,
    VoteWithholdingHotStuffReplica,
)
from repro.core.faults import FaultPlan
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


# -- slow-drip ---------------------------------------------------------------


def test_slow_drip_commits_but_bleeds_throughput():
    """Same seed, same views: the dripping leader takes strictly longer."""
    clean = ConsensusSystem(small_config("damysus", f=1, timeout_ms=500))
    clean.run_until_views(6, max_time_ms=300_000)

    dripped = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=500),
        replica_overrides={1: SlowDripDamysusLeader},
    )
    result = dripped.run_until_views(6, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 5
    assert dripped.replicas[1].dripped_views > 0
    assert dripped.sim.now > clean.sim.now


def test_slow_drip_does_not_trigger_view_changes():
    """The whole point of the attack: it stays under the timeout radar."""
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=500),
        replica_overrides={1: SlowDripHotStuffLeader},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert system.replicas[1].dripped_views > 0
    honest = [r for pid, r in enumerate(system.replicas) if pid != 1]
    assert all(r.pacemaker.timeouts_fired == 0 for r in honest)


# -- vote withholding --------------------------------------------------------


def test_damysus_withholding_coalition_costs_nothing_at_f():
    """f withholders of 2f+1: the honest f+1 still form every quorum."""
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=500),
        replica_overrides={1: VoteWithholdingDamysusReplica},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    assert system.replicas[1].votes_withheld > 0


def test_hotstuff_withholding_coalition_costs_nothing_at_f():
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=500),
        replica_overrides={1: VoteWithholdingHotStuffReplica},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    assert system.replicas[1].votes_withheld > 0


# -- targeted partition ------------------------------------------------------


def test_partition_attack_heals_and_commits_resume():
    config = small_config("damysus", f=1, timeout_ms=250)
    n = 3  # damysus: 2f+1
    victims = victim_pids(n, config.f)
    colluder = next(pid for pid in range(n) if pid not in victims)
    system = ConsensusSystem(
        config, replica_overrides={colluder: TargetedPartitionDamysusReplica}
    )
    system.apply_fault_plan(leader_isolation_plan(n, config.f))
    system.start()
    system.sim.run(until=ATTACK_END_MS + 4_000.0)
    result = system.result()
    assert result.safe
    assert system.replicas[colluder].suppressed_messages > 0
    # LivenessOracle in miniature: fresh commits after the window healed.
    post_heal = [
        rec for rec in system.monitor.executions if rec.executed_at > ATTACK_END_MS
    ]
    assert post_heal


# -- Byzantine sync server ---------------------------------------------------


def test_forged_state_transfer_is_refused_and_victim_catches_up():
    """The rejoiner rejects the forged replies and recovers from honest peers."""
    config = small_config(
        "damysus", f=1, timeout_ms=250, checkpoint_interval=5, seed=1
    )
    n = 3
    victim = n - 1
    system = ConsensusSystem(
        config, replica_overrides={1: ByzantineSyncServerDamysus}
    )
    system.apply_fault_plan(
        FaultPlan().crash(victim, at_ms=400.0, recover_at_ms=2_400.0)
    )
    system.start()
    system.sim.run(until=12_000.0)
    result = system.result()
    assert result.safe
    forger = system.replicas[1]
    assert forger.forged_checkpoints_sent > 0
    assert forger.forged_suffixes_sent > 0
    # The victim rejoined and committed past its outage despite the forger.
    victim_commits = [
        rec
        for rec in system.monitor.executions
        if rec.replica == victim and rec.executed_at > 2_400.0
    ]
    assert victim_commits


# -- crash-recover amnesia ---------------------------------------------------


def test_amnesia_rollback_is_refused_by_the_seal_counter():
    config = small_config(
        "damysus", f=1, timeout_ms=250, checkpoint_interval=5, seed=1
    )
    system = ConsensusSystem(config, replica_overrides={1: AmnesiaDamysusReplica})
    system.apply_fault_plan(
        FaultPlan().crash(1, at_ms=800.0, recover_at_ms=1_600.0)
    )
    system.start()
    system.sim.run(until=6_000.0)
    result = system.result()
    assert result.safe
    attacker = system.replicas[1]
    assert attacker.rollback_attempts == 1
    assert attacker.rollback_refusals == 1  # every attempt refused
    # The replica rejoined with full memory and kept committing.
    rejoined = [
        rec
        for rec in system.monitor.executions
        if rec.replica == 1 and rec.executed_at > 1_600.0
    ]
    assert rejoined


# -- mempool spam ------------------------------------------------------------


def test_spam_cannot_overflow_the_bounded_pool():
    config = small_config(
        "damysus", f=1, timeout_ms=500, mempool_max_txs=50, payload_bytes=8
    )
    system = ConsensusSystem(
        config, replica_overrides={1: MempoolSpammerDamysusReplica}
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    assert system.replicas[1].spam_sent > 0
    for pid, replica in enumerate(system.replicas):
        if pid != 1:
            assert replica.mempool.pending() <= 50


def test_spam_does_not_stop_hotstuff_commits():
    config = small_config(
        "hotstuff", f=1, timeout_ms=500, mempool_max_txs=50, payload_bytes=8
    )
    system = ConsensusSystem(
        config, replica_overrides={2: MempoolSpammerHotStuffReplica}
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    assert system.replicas[2].spam_sent > 0
