"""Safety under stale-certificate (understating) leaders."""

from repro.adversary.stale_leader import StaleDamysusLeader, StaleHotStuffLeader
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def test_hotstuff_lock_rejects_stale_proposals():
    """A genesis-extending leader stalls its views but cannot fork."""
    system = ConsensusSystem(
        small_config("hotstuff", f=1, timeout_ms=250),
        replica_overrides={2: StaleHotStuffLeader},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 5
    byzantine = system.replicas[2]
    assert byzantine.stale_proposals > 0
    # None of the adversary's genesis-extending blocks ever executed
    # beyond the first view (its view-1 proposal legitimately extends
    # genesis before anything is locked).
    for rec in system.monitor.executions:
        block = system.replicas[0].store.get(rec.block_hash)
        if block is not None and rec.view > 1:
            assert block.parent_hash != system.replicas[0].store.genesis.hash


def test_damysus_accumulator_pins_stale_leader_to_executed_chain():
    """Even choosing the lowest f+1 reports cannot fork executed blocks."""
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={2: StaleDamysusLeader},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 5


def test_damysus_stale_leader_chain_stays_linear():
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={2: StaleDamysusLeader},
    )
    system.run_until_views(5, max_time_ms=300_000)
    replica = system.replicas[0]
    chain = replica.ledger.executed
    prev = replica.store.genesis
    for block in chain:
        assert block.parent_hash == prev.hash
        prev = block
