"""Tests for ``repro analyze``: the whole-program dataflow analyses.

Each rule family gets firing and clean fixtures under a temp tree, the
PR-6 ``tee_checkpoint`` bug is re-detected from its historical shape,
and meta-tests pin the real ``src/`` tree to zero findings with an
empty committed baseline - the acceptance criteria of the analyzer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.dataflow import (
    all_analyze_rule_ids,
    load_baseline,
    run_analyze,
)
from repro.cli import main
from tests.analysis.test_lint import make_module

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def analyze_ids(
    root: Path, rules: list[str] | None = None
) -> list[tuple[str, int]]:
    findings = run_analyze([root], rules=rules)
    return [(f.rule_id, f.line) for f in findings]


# -- TAINT001: host data written to protected TEE state -------------------------


def test_taint001_host_param_stored_unverified(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT001"]) == [("TAINT001", 4)]


def test_taint001_ordering_guard_does_not_sanitize(tmp_path):
    """The PR-6 shape: ``<=`` constrains a value without verifying it."""
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                if height <= self._height:
                    raise ValueError(height)
                self._height = height
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT001"]) == [("TAINT001", 6)]


def test_taint001_equality_guard_sanitizes(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, digest):
                if digest != self._expected:
                    raise ValueError(digest)
                self._latest = digest
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT001"]) == []


def test_taint001_verifier_call_sanitizes(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, qc):
                if not self._verify_commitment(qc):
                    raise ValueError(qc)
                self._qc = qc
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT001"]) == []


def test_taint001_propagates_through_helper(tmp_path):
    """A private helper whose param reaches protected state is a sink."""
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, root):
                self._install(root)

            def _install(self, root):
                self._root = root
        """,
    )
    findings = run_analyze([tmp_path], rules=["TAINT001"])
    assert [(f.rule_id, f.line) for f in findings] == [("TAINT001", 4)]
    assert "via" in findings[0].message


# -- TAINT002: host data certified by the TEE -----------------------------------


def test_taint002_unverified_param_reaches_certification(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        def checkpoint_payload(signer, height):
            return ("ckpt", signer, height)

        class Checker:
            def tee_checkpoint(self, height):
                payload = checkpoint_payload(self._signer, height)
                return self._sign(payload)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT002"]) == [
        ("TAINT002", 7),
        ("TAINT002", 8),
    ]


def test_taint002_fires_on_trinc_counter_shape(tmp_path):
    """TrInc's ``attest`` really does certify an unverified host digest -
    the paper's Section 4.1 insufficiency argument.  The analyzer flags
    the shape; the real ``repro.tee.counter`` carries a justified inline
    waiver instead of a fix.
    """
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        def counter_payload(signer, value, digest):
            return ("trinc", signer, value, digest)

        class Counter:
            def tee_attest(self, digest):
                self._value += 1
                payload = counter_payload(self._signer, self._value, digest)
                return self._sign(payload)
        """,
    )
    ids = analyze_ids(tmp_path, ["TAINT002"])
    assert ("TAINT002", 9) in ids


def test_taint002_stamped_emitters_are_exempt(tmp_path):
    """Commitments attest presentation-at-a-step, not certified state."""
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        def commitment_payload(signer, step):
            return ("commit", signer, step)

        class Checker:
            def tee_sign(self, digest):
                payload = commitment_payload(self._signer, digest)
                return self._create_unique_sign(payload)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT002"]) == []


def test_taint002_multiline_call_suppressed_on_last_line(tmp_path):
    """Inline ignores work anywhere in a multiline node's span."""
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        def checkpoint_payload(signer, height):
            return (signer, height)

        class Checker:
            def tee_checkpoint(self, height):
                payload = checkpoint_payload(
                    self._signer,
                    height,
                )  # repro-analyze: ignore[TAINT002]
                return payload
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT002"]) == []


# -- the PR-6 tee_checkpoint bug, re-detected from its historical shape ---------


def test_pr6_checkpoint_bug_is_redetected(tmp_path):
    """The exact historical shape: ``height``/``state_root`` certified
    behind an ordering guard, while ``block_hash``/``qc`` are properly
    pinned.  The analyzer must flag the unverified pair and only it.
    """
    make_module(
        tmp_path,
        "repro.tee.checker",
        """
        def checkpoint_payload(signer, height, block_hash, state_root):
            return ("ckpt", signer, height, block_hash, state_root)

        class CheckerService:
            def tee_checkpoint(self, height, block_hash, state_root, qc):
                if height <= self._ckpt_height:
                    raise ValueError("stale checkpoint")
                if qc.h_prep != block_hash:
                    raise ValueError("qc certifies a different block")
                if not self._verify_commitment(qc, block_hash):
                    raise ValueError("invalid commitment")
                self._ckpt_height = height
                payload = checkpoint_payload(
                    self._signer, height, block_hash, state_root
                )
                return self._sign(payload)
        """,
    )
    findings = run_analyze([tmp_path], rules=["TAINT001", "TAINT002"])
    assert [(f.rule_id, f.line) for f in findings] == [
        ("TAINT001", 13),
        ("TAINT002", 14),
        ("TAINT002", 17),
    ]
    messages = " ".join(f.message for f in findings)
    assert "'height'" in messages
    assert "'state_root'" in messages
    assert "'block_hash'" not in messages
    assert "'qc'" not in messages


def test_fixed_checkpoint_shape_is_clean(tmp_path):
    """The post-fix shape: every certified input pinned or verified."""
    make_module(
        tmp_path,
        "repro.tee.checker",
        """
        def checkpoint_payload(signer, height, block_hash, state_root):
            return ("ckpt", signer, height, block_hash, state_root)

        class CheckerService:
            def tee_checkpoint(self, height, block_hash, state_root, qc):
                tip = block_hash
                if qc.h_prep != tip:
                    raise ValueError("qc certifies a different block")
                if not self._verify_commitment(qc, tip):
                    raise ValueError("invalid commitment")
                if height != len(self._log):
                    raise ValueError("height does not match the log")
                if state_root != self._fold():
                    raise ValueError("state root mismatch")
                self._ckpt_height = height
                payload = checkpoint_payload(self._signer, height, tip, state_root)
                return self._sign(payload)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT001", "TAINT002"]) == []


# -- TAINT003: wire data handed to the TEE's adopting interface -----------------


def test_taint003_message_param_to_adopting_call(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.handler",
        """
        def on_checkpoint(replica, msg):
            replica.checker.tee_checkpoint(msg.height, msg.root)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT003"]) == [("TAINT003", 3)]


def test_taint003_annotation_marks_message_source(tmp_path):
    make_module(
        tmp_path,
        "repro.core.msgs",
        """
        class CheckpointMsg:
            msg_type = "checkpoint"
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.handler",
        """
        def adopt(replica, note: CheckpointMsg):
            replica.checker.tee_install_checkpoint(note)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT003"]) == [("TAINT003", 3)]


def test_taint003_host_verification_sanitizes(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.handler",
        """
        def on_checkpoint(replica, msg):
            if not verify_checkpoint(msg):
                raise ValueError(msg)
            replica.checker.tee_checkpoint(msg.height)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT003"]) == []


def test_taint003_vote_path_is_exempt(tmp_path):
    """tee_sign/tee_prepare/tee_store self-verify and raise TEERefusal."""
    make_module(
        tmp_path,
        "repro.protocols.handler",
        """
        def on_vote(replica, msg):
            replica.checker.tee_sign(msg.digest)
        """,
    )
    assert analyze_ids(tmp_path, ["TAINT003"]) == []


def test_taint003_propagates_through_helper(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.handler",
        """
        def adopt(replica, msg):
            install(replica, msg.height)

        def install(replica, height):
            replica.checker.tee_checkpoint(height)
        """,
    )
    findings = run_analyze([tmp_path], rules=["TAINT003"])
    assert [(f.rule_id, f.line) for f in findings] == [("TAINT003", 3)]
    assert "via" in findings[0].message


# -- PURE001/PURE002: transitive effect purity ----------------------------------


def test_pure001_nondeterminism_reachable_through_helper(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        class Machine:
            pass

        class Proto(Machine):
            def on_timer(self, time):
                return self._stamp(time)

            def _stamp(self, time):
                return time.time()
        """,
    )
    findings = run_analyze([tmp_path], rules=["PURE001"])
    assert [(f.rule_id, f.line) for f in findings] == [("PURE001", 10)]
    assert "Proto.on_timer" in findings[0].message


def test_pure001_crosses_module_boundaries(tmp_path):
    make_module(
        tmp_path,
        "repro.core.util",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        from repro.core.util import stamp

        class Machine:
            pass

        class Proto(Machine):
            def on_message(self):
                return stamp()
        """,
    )
    findings = run_analyze([tmp_path], rules=["PURE001"])
    assert [(f.rule_id, f.line) for f in findings] == [("PURE001", 5)]
    assert findings[0].path.endswith("util.py")


def test_pure002_io_from_declared_entry_point(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        class Machine:
            pass

        class Proto(Machine):
            ENTRY_POINTS = ("on_sync",)

            def on_sync(self):
                return open("/tmp/state")
        """,
    )
    assert analyze_ids(tmp_path, ["PURE002"]) == [("PURE002", 9)]


def test_pure_walk_stops_at_runtime_host_boundary(tmp_path):
    """Crossing into repro.sim/runtime hosts is the by-design seam."""
    make_module(
        tmp_path,
        "repro.sim.host",
        """
        def run_io():
            return open("state")
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        from repro.sim.host import run_io

        class Machine:
            pass

        class Proto(Machine):
            def on_timer(self):
                return run_io()
        """,
    )
    assert analyze_ids(tmp_path, ["PURE001", "PURE002"]) == []


def test_pure001_seeded_random_is_exempt(tmp_path):
    """random.Random(seed) is deterministic; argless Random() is not."""
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        import random

        class Machine:
            pass

        class Proto(Machine):
            def on_message(self, seed):
                gen = random.Random(seed)
                return random.Random()
        """,
    )
    assert analyze_ids(tmp_path, ["PURE001"]) == [("PURE001", 10)]


# -- ASYNC001/ASYNC002: await races ---------------------------------------------


def test_async001_read_modify_write_across_await(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        import asyncio

        class Net:
            async def close(self):
                tasks = list(self._tasks)
                await asyncio.gather(*tasks)
                self._tasks.clear()
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == [("ASYNC001", 8)]


def test_async001_detach_before_await_is_clean(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        import asyncio

        class Net:
            async def close(self):
                tasks = list(self._tasks)
                self._tasks.clear()
                await asyncio.gather(*tasks)
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == []


def test_async001_lock_spanning_read_and_write_is_clean(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        import asyncio

        class Net:
            async def close(self):
                async with self._lock:
                    tasks = list(self._tasks)
                    await asyncio.gather(*tasks)
                    self._tasks.clear()
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == []


def test_async001_tracks_nonlocal_closure_state(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        async def outer(gather):
            count = 0

            async def bump():
                nonlocal count
                snapshot = count
                await gather()
                count = snapshot + 1
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == [("ASYNC001", 9)]


def test_async001_mutator_calls_are_writes_not_reads(tmp_path):
    """set.add of independent elements is not a stale-read hazard."""
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        class Net:
            async def register(self, task):
                self._tasks.add(task)
                await task
                self._tasks.add(task)
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == []


def test_async001_inline_suppression(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        class Net:
            async def close(self):
                tasks = list(self._tasks)
                await tasks[0]
                self._tasks.clear()  # repro-analyze: ignore[ASYNC001]
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC001"]) == []


def test_async002_await_in_loop_under_lock(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        class Net:
            async def drain(self):
                async with self._lock:
                    for item in self._items:
                        await item.flush()
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC002"]) == [("ASYNC002", 6)]


def test_async002_non_lock_context_is_clean(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        class Net:
            async def drain(self):
                async with self._session:
                    for item in self._items:
                        await item.flush()
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC002"]) == []


def test_async002_async_for_header_is_the_loop_itself(tmp_path):
    make_module(
        tmp_path,
        "repro.runtime.netty",
        """
        class Net:
            async def drain(self):
                async with self._lock:
                    async for item in self._queue:
                        pass
        """,
    )
    assert analyze_ids(tmp_path, ["ASYNC002"]) == []


# -- registry and CLI -----------------------------------------------------------


def test_registry_has_all_analyze_families():
    ids = set(all_analyze_rule_ids())
    assert {"TAINT001", "TAINT002", "TAINT003"} <= ids
    assert {"PURE001", "PURE002"} <= ids
    assert {"ASYNC001", "ASYNC002"} <= ids


def test_unknown_analyze_rule_raises(tmp_path):
    with pytest.raises(KeyError):
        run_analyze([tmp_path], rules=["NOPE999"])


def test_cli_analyze_clean_tree_exits_zero(tmp_path, capsys):
    make_module(tmp_path, "repro.core.clean", "VALUE = 1\n")
    assert main(["analyze", str(tmp_path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_analyze_violation_exits_nonzero(tmp_path, capsys):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height
        """,
    )
    assert main(["analyze", str(tmp_path)]) == 1
    assert "TAINT001" in capsys.readouterr().out


def test_cli_analyze_json_format(tmp_path, capsys):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height
        """,
    )
    assert main(["analyze", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "TAINT001"


def test_cli_analyze_rule_filter(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height
        """,
    )
    assert main(["analyze", str(tmp_path), "--rule", "ASYNC001"]) == 0


def test_cli_analyze_unknown_rule_exits_two(tmp_path, capsys):
    assert main(["analyze", str(tmp_path), "--rule", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_analyze_write_baseline_then_clean(tmp_path, capsys):
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height
        """,
    )
    baseline = tmp_path / "baseline.json"
    assert main(
        ["analyze", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
    ) == 0
    capsys.readouterr()
    assert main(["analyze", str(tmp_path), "--baseline", str(baseline)]) == 0
    assert main(
        ["analyze", str(tmp_path), "--baseline", str(baseline), "--no-baseline"]
    ) == 1


def test_cli_analyze_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out.split()
    assert "TAINT001" in out and "ASYNC002" in out


# -- the meta-tests: this repository passes its own dataflow analysis -----------


def test_repo_src_has_zero_analyze_findings():
    findings = run_analyze([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_analyze_baseline_is_committed_and_empty():
    baseline_path = REPO_SRC.parent / ".repro-analyze-baseline.json"
    assert baseline_path.exists()
    assert load_baseline(baseline_path) == set()
