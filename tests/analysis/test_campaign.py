"""Tests for the attack-campaign engine and its three oracles."""

import json

import pytest

from repro.adversary import get_adversary
from repro.analysis.campaign import (
    CampaignCell,
    base_plans,
    degradation_label,
    merge_plans,
    run_campaign,
    run_cell,
)
from repro.core.faults import FaultPlan
from repro.errors import ConfigError


def _tiny_campaign(seed=1):
    return run_campaign(
        protocols=("damysus",),
        adversaries=("silent", "spam"),
        plans=("clean",),
        topologies=("eu",),
        seed=seed,
    )


# -- oracles and scoring ----------------------------------------------------


def test_cells_pass_all_three_oracles():
    report = _tiny_campaign()
    assert len(report.cells) == 2
    assert report.ok
    for cell in report.cells:
        assert cell.verdict == "PASS"
        assert cell.safe and cell.violation is None
        assert cell.live_after_heal
        assert cell.views_to_recover is not None
        assert cell.attack_events > 0  # the attack demonstrably fired
        assert cell.commits > 0 and cell.baseline_commits > 0


def test_colluding_plan_rides_along_with_the_adversary():
    """sync-forge bundles a victim-crash plan; the cell must still pass."""
    cell = run_cell(
        "damysus", get_adversary("sync-forge"), "clean", "eu", seed=1
    )
    assert cell.verdict == "PASS"
    assert cell.healed_at_ms == 2_400.0  # the bundled crash's recovery


def test_hotstuff_resynchronizes_after_crash_plus_loss():
    """Regression: crash + lossy links used to leave HotStuff replicas in
    permanently offset views (one view per capped timeout, never
    converging).  The corroborated-view jump on timeout fixes it; this
    cell stalled forever before that fix.
    """
    for topology in ("eu", "world"):
        cell = run_cell(
            "hotstuff", get_adversary("sync-forge"), "lossy", topology, seed=1
        )
        assert cell.verdict == "PASS", topology
        assert cell.live_after_heal


def test_degradation_bands():
    assert degradation_label(1.0) == "minimal"
    assert degradation_label(0.75) == "minimal"
    assert degradation_label(0.5) == "moderate"
    assert degradation_label(0.40) == "moderate"
    assert degradation_label(0.1) == "severe"
    assert degradation_label(0.0) == "severe"


# -- determinism ------------------------------------------------------------


def test_same_seed_is_bit_identical():
    first, second = _tiny_campaign(seed=3), _tiny_campaign(seed=3)
    assert first.to_json() == second.to_json()
    assert first.digest() == second.digest()


def test_different_seeds_diverge():
    assert _tiny_campaign(seed=1).digest() != _tiny_campaign(seed=2).digest()


def test_report_round_trips_through_json():
    report = _tiny_campaign()
    data = json.loads(report.to_json())
    assert data["digest"] == report.digest()
    assert len(data["cells"]) == 2
    assert data["cells"][0]["verdict"] == "PASS"


def test_unsupported_pairs_are_skipped_not_errors():
    report = run_campaign(
        protocols=("hotstuff",),
        adversaries=("amnesia",),  # needs a TEE to roll back
        plans=("clean",),
        topologies=("eu",),
    )
    assert report.cells == []
    assert report.skipped == [("amnesia", "hotstuff")]
    assert report.ok  # nothing ran, nothing failed


def test_unknown_plan_and_topology_are_config_errors():
    with pytest.raises(ConfigError, match="unknown plan"):
        run_campaign(plans=("stormy",))
    with pytest.raises(ConfigError, match="unknown topology"):
        run_cell("damysus", get_adversary("silent"), "clean", "mars", seed=1)


# -- plan plumbing ----------------------------------------------------------


def test_base_plans_are_rebuilt_per_call():
    """FaultPlan is mutable; sharing one instance would leak rules."""
    base_plans()["clean"].lossy_links(0.5, end_ms=10.0)
    assert base_plans()["clean"].rules == []


def test_merge_plans_carries_rules_and_crashes_from_both():
    base = FaultPlan().lossy_links(0.1, end_ms=100.0)
    extra = FaultPlan().crash(2, at_ms=50.0, recover_at_ms=80.0)
    merged = merge_plans(base, extra)
    assert len(merged.rules) == len(base.rules)
    assert len(merged.crashes) == 1
    assert merged is not base and merged is not extra
    assert merge_plans(base, None).crashes == []


def test_verdict_precedence_unsafe_beats_stalled():
    kwargs = dict(
        protocol="damysus", adversary="x", plan="clean", topology="eu",
        seed=1, violation=None, views_to_recover=None, healed_at_ms=0.0,
        duration_ms=1.0, commits=0, baseline_commits=1,
        degradation_ratio=0.0, degradation="severe", attack_events=0,
        attacker_pids=(1,), timeouts_fired=0,
    )
    unsafe = CampaignCell(safe=False, live_after_heal=False, **kwargs)
    stalled = CampaignCell(safe=True, live_after_heal=False, **kwargs)
    passing = CampaignCell(safe=True, live_after_heal=True, **kwargs)
    assert unsafe.verdict == "UNSAFE" and not unsafe.ok
    assert stalled.verdict == "STALLED" and not stalled.ok
    assert passing.verdict == "PASS" and passing.ok
