"""Tests for the result regression comparator."""

import json

import pytest

from repro.analysis.regression import compare_files, compare_results


def blob(damysus_tput=10.0, hotstuff_tput=5.0, lat=50.0):
    cells = {
        "damysus|1": {"N": 3, "tput_kops": damysus_tput, "lat_ms": lat},
        "hotstuff|1": {"N": 4, "tput_kops": hotstuff_tput, "lat_ms": lat * 2},
    }
    return {key: {"cells": dict(cells), "notes": []} for key in ("fig6a", "fig6b", "fig7a", "fig7b")}


def test_identical_blobs_have_zero_drift():
    report = compare_results(blob(), blob())
    assert report.shape_ok
    assert all(d.relative == 0.0 for d in report.drifts)
    assert report.worst_drift().relative == 0.0


def test_drift_is_relative():
    report = compare_results(blob(damysus_tput=10.0), blob(damysus_tput=12.0))
    worst = report.worst_drift()
    assert worst.metric == "tput_kops"
    assert worst.relative == pytest.approx(0.2)


def test_ordering_break_detected():
    report = compare_results(blob(), blob(damysus_tput=3.0, hotstuff_tput=5.0))
    assert not report.shape_ok
    assert any("damysus" in msg for msg in report.ordering_breaks)


def test_summary_readable():
    report = compare_results(blob(), blob(damysus_tput=20.0))
    text = report.summary(drift_threshold=0.25)
    assert "drifted" in text
    assert "+100%" in text


def test_compare_files_roundtrip(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(blob()))
    cand.write_text(json.dumps(blob(damysus_tput=11.0)))
    report = compare_files(base, cand)
    assert report.shape_ok
    assert report.worst_drift().relative == pytest.approx(0.1)


def test_missing_cells_are_skipped():
    candidate = blob()
    for figure in candidate.values():
        figure["cells"].pop("hotstuff|1")
    report = compare_results(blob(), candidate)
    assert all(d.cell == "damysus|1" for d in report.drifts)


def test_missing_figure_is_skipped():
    candidate = blob()
    del candidate["fig7b"]
    report = compare_results(blob(), candidate)
    assert all(d.figure != "fig7b" for d in report.drifts)
    # The remaining figures still contribute their full drift set.
    assert {d.figure for d in report.drifts} == {"fig6a", "fig6b", "fig7a"}


def test_empty_blobs_compare_clean():
    report = compare_results({}, {})
    assert report.drifts == []
    assert report.shape_ok
    assert report.worst_drift() is None


def test_zero_baseline_reports_zero_relative():
    """A zero baseline cell must not divide by zero."""
    report = compare_results(blob(damysus_tput=0.0), blob(damysus_tput=4.0))
    zero_drifts = [d for d in report.drifts if d.baseline == 0.0]
    assert zero_drifts
    assert all(d.relative == 0.0 for d in zero_drifts)


def test_compare_files_shape_mismatch(tmp_path):
    """Candidate with flipped ordering is flagged via the file API too."""
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(blob()))
    cand.write_text(json.dumps(blob(damysus_tput=2.0, hotstuff_tput=5.0)))
    report = compare_files(base, cand)
    assert not report.shape_ok
    assert report.ordering_breaks


def test_real_results_file_shape_holds():
    """The committed full_results.json passes its own regression check."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "results" / "full_results.json"
    if not path.exists():
        pytest.skip("full_results.json not generated")
    report = compare_files(path, path)
    assert report.shape_ok
