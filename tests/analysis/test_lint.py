"""Self-check tests for the ``repro lint`` invariant linter.

Each rule gets a small fixture module containing exactly one deliberate
violation; the tests assert the precise rule id and line.  A meta-test
runs the linter over the real ``src/`` tree and requires zero findings,
so the invariants the linter encodes are enforced on this repository
itself.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    all_rule_ids,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def make_module(root: Path, module: str, body: str) -> Path:
    """Write ``body`` as ``<root>/<module as path>.py`` with package inits."""
    parts = module.split(".")
    directory = root
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(body))
    return path


def lint_ids(root: Path, rules: list[str] | None = None) -> list[tuple[str, int]]:
    findings = run_lint([root], rules=rules)
    return [(f.rule_id, f.line) for f in findings]


# -- TEE trust-boundary rules ---------------------------------------------------


def test_tee001_private_attribute_access(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.bad",
        """
        def leak(replica):
            return replica.checker._preph
        """,
    )
    assert lint_ids(tmp_path, ["TEE001"]) == [("TEE001", 3)]


def test_tee001_known_private_member_any_receiver(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.bad",
        """
        def leak(component):
            return component._signer
        """,
    )
    assert lint_ids(tmp_path, ["TEE001"]) == [("TEE001", 3)]


def test_tee001_allows_own_private_attributes(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.fine",
        """
        class Replica:
            def __init__(self):
                self._signer = 1

            def get(self):
                return self._signer
        """,
    )
    assert lint_ids(tmp_path, ["TEE001"]) == []


def test_tee001_allowed_inside_tee_package(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.internal",
        """
        def seal(checker):
            return checker._signer
        """,
    )
    assert lint_ids(tmp_path, ["TEE001"]) == []


def test_tee002_forged_tee_signature(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.forge",
        """
        def forge(scheme, tee_signer_id, Signature):
            return Signature(tee_signer_id(3), b"x", "hmac")
        """,
    )
    assert lint_ids(tmp_path, ["TEE002"]) == [("TEE002", 3)]


def test_tee002_scheme_sign_with_tee_id(tmp_path):
    make_module(
        tmp_path,
        "repro.adversary.forge",
        """
        def forge(scheme, tee_signer_id):
            return scheme.sign(tee_signer_id(0), b"payload")
        """,
    )
    assert lint_ids(tmp_path, ["TEE002"]) == [("TEE002", 3)]


def test_tee003_trusted_state_mutation(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.mutate",
        """
        def rewind(replica, step):
            replica.checker.step = step
        """,
    )
    assert lint_ids(tmp_path, ["TEE003"]) == [("TEE003", 3)]


def test_tee003_rebinding_component_slot_is_fine(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.rebind",
        """
        def restore(replica, fresh):
            replica.checker = fresh
        """,
    )
    assert lint_ids(tmp_path, ["TEE003"]) == []


# -- determinism rules ----------------------------------------------------------


def test_det001_banned_import(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.entropy",
        """
        import random

        def draw():
            return random.random()
        """,
    )
    assert ("DET001", 2) in lint_ids(tmp_path, ["DET001"])


def test_det001_from_import_and_os_urandom(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.clock",
        """
        from time import monotonic
        from os import urandom
        """,
    )
    assert lint_ids(tmp_path, ["DET001"]) == [("DET001", 2), ("DET001", 3)]


def test_det001_rng_module_exempt(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.rng",
        """
        import random
        """,
    )
    assert lint_ids(tmp_path, ["DET001"]) == []


def test_det001_unrestricted_package_exempt(tmp_path):
    make_module(
        tmp_path,
        "repro.bench.wallclock",
        """
        import time
        """,
    )
    assert lint_ids(tmp_path, ["DET001"]) == []


def test_det002_banned_calls(tmp_path):
    make_module(
        tmp_path,
        "repro.analysis.sampler",
        """
        def stamp(time, datetime, random):
            a = time.time()
            b = datetime.now()
            c = random.choice([1, 2])
            return a, b, c
        """,
    )
    assert lint_ids(tmp_path, ["DET002"]) == [
        ("DET002", 3),
        ("DET002", 4),
        ("DET002", 5),
    ]


def test_det003_id_and_hash(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.salted",
        """
        def key(obj):
            return id(obj) ^ hash("salted")
        """,
    )
    assert lint_ids(tmp_path, ["DET003"]) == [("DET003", 3), ("DET003", 3)]


# -- message-exhaustiveness rules -----------------------------------------------


def test_msg001_unhandled_message_type(tmp_path):
    make_module(
        tmp_path,
        "repro.core.messages",
        """
        class OrphanMsg:
            msg_type = "orphan"

        class UsedMsg:
            msg_type = "used"
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.proto",
        """
        def dispatch(payload):
            if isinstance(payload, UsedMsg):
                return True
        """,
    )
    assert lint_ids(tmp_path, ["MSG001"]) == [("MSG001", 2)]


def test_msg002_sent_but_unhandled(tmp_path):
    make_module(
        tmp_path,
        "repro.core.messages",
        """
        class PingMsg:
            msg_type = "ping"
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.sender",
        """
        def send(broadcast):
            broadcast(PingMsg())
        """,
    )
    ids = lint_ids(tmp_path, ["MSG002"])
    assert ids == [("MSG002", 3)]


def test_msg003_non_exhaustive_phase_match(tmp_path):
    make_module(
        tmp_path,
        "repro.core.phases",
        """
        import enum

        class Phase(enum.Enum):
            NEW_VIEW = "nv_p"
            PREPARE = "prep_p"
            PRECOMMIT = "pcom_p"
        """,
    )
    make_module(
        tmp_path,
        "repro.protocols.phasey",
        """
        def route(phase, Phase):
            match phase:
                case Phase.NEW_VIEW:
                    return 1
                case Phase.PREPARE:
                    return 2
        """,
    )
    assert lint_ids(tmp_path, ["MSG003"]) == [("MSG003", 3)]


def test_msg003_wildcard_is_exhaustive(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.phasey",
        """
        def route(phase, Phase):
            match phase:
                case Phase.NEW_VIEW:
                    return 1
                case _:
                    raise ValueError(phase)
        """,
    )
    assert lint_ids(tmp_path, ["MSG003"]) == []


# -- ARCH layering rules --------------------------------------------------------


def test_arch001_core_must_not_import_sim(tmp_path):
    make_module(
        tmp_path,
        "repro.core.leaky",
        """
        from repro.sim.events import Simulator

        def build():
            return Simulator()
        """,
    )
    assert lint_ids(tmp_path, ["ARCH001"]) == [("ARCH001", 2)]


def test_arch002_tee_must_not_import_asyncio_runtime(tmp_path):
    make_module(
        tmp_path,
        "repro.tee.leaky",
        """
        import repro.runtime.asyncio_net
        """,
    )
    assert lint_ids(tmp_path, ["ARCH002"]) == [("ARCH002", 2)]


def test_arch003_protocols_must_not_import_sim(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.leaky",
        """
        def lazy():
            from repro.sim.network import Network  # laziness is no excuse

            return Network
        """,
    )
    assert lint_ids(tmp_path, ["ARCH003"]) == [("ARCH003", 3)]


def test_arch003_submodule_via_from_parent_import(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.leaky",
        """
        from repro.runtime import asyncio_net
        """,
    )
    assert lint_ids(tmp_path, ["ARCH003"]) == [("ARCH003", 2)]


def test_arch_rules_allow_effect_vocabulary(tmp_path):
    make_module(
        tmp_path,
        "repro.protocols.fine",
        """
        from repro.core.clock import Clock
        from repro.runtime.effects import Send
        from repro.runtime.machine import Machine
        """,
    )
    assert lint_ids(tmp_path, ["ARCH001", "ARCH002", "ARCH003"]) == []


def test_arch_rules_ignore_other_layers(tmp_path):
    make_module(
        tmp_path,
        "repro.bench.hosty",
        """
        from repro.sim.events import Simulator
        """,
    )
    assert lint_ids(tmp_path, ["ARCH001", "ARCH002", "ARCH003"]) == []


# -- suppression, baseline, engine plumbing -------------------------------------


def test_inline_suppression_by_rule_id(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.suppressed",
        """
        import random  # repro-lint: ignore[DET001]
        """,
    )
    assert lint_ids(tmp_path, ["DET001"]) == []


def test_inline_suppression_wrong_rule_does_not_silence(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.suppressed",
        """
        import random  # repro-lint: ignore[TEE001]
        """,
    )
    assert lint_ids(tmp_path, ["DET001"]) == [("DET001", 2)]


def test_bare_ignore_silences_all_rules(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.suppressed",
        """
        import random  # repro-lint: ignore
        """,
    )
    assert lint_ids(tmp_path) == []


def test_skip_file_pragma(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.skipped",
        """
        # repro-lint: skip-file
        import random
        """,
    )
    assert lint_ids(tmp_path) == []


def test_baseline_waives_and_write_baseline_roundtrip(tmp_path):
    path = make_module(
        tmp_path,
        "repro.sim.legacy",
        """
        import random
        """,
    )
    findings = run_lint([path])
    assert [f.rule_id for f in findings] == ["DET001"]
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    waived = load_baseline(baseline_file)
    assert run_lint([path], baseline=waived) == []


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


def test_unknown_rule_raises():
    with pytest.raises(KeyError):
        run_lint([REPO_SRC], rules=["NOPE999"])


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    findings = run_lint([tmp_path])
    assert [f.rule_id for f in findings] == ["PARSE000"]


def test_registry_has_all_rule_families():
    ids = all_rule_ids()
    assert {"TEE001", "TEE002", "TEE003"} <= set(ids)
    assert {"DET001", "DET002", "DET003"} <= set(ids)
    assert {"MSG001", "MSG002", "MSG003"} <= set(ids)


def test_finding_key_is_stable():
    finding = Finding("DET001", "src/x.py", 3, 1, "import of 'random'")
    assert finding.key() == "src/x.py::DET001::3"


# -- CLI ------------------------------------------------------------------------


def test_cli_lint_clean_tree_exits_zero(tmp_path, capsys):
    make_module(tmp_path, "repro.sim.clean", "VALUE = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_violation_exits_nonzero(tmp_path, capsys):
    make_module(tmp_path, "repro.sim.dirty", "import random\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_lint_json_format(tmp_path, capsys):
    make_module(tmp_path, "repro.sim.dirty", "import random\n")
    assert main(["lint", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "DET001"


def test_cli_lint_rule_filter(tmp_path):
    make_module(tmp_path, "repro.sim.dirty", "import random\n")
    assert main(["lint", str(tmp_path), "--rule", "TEE001"]) == 0


def test_cli_lint_unknown_rule_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--rule", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_lint_write_baseline_then_clean(tmp_path, capsys):
    make_module(tmp_path, "repro.sim.dirty", "import random\n")
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
    ) == 0
    capsys.readouterr()
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
    assert main(
        ["lint", str(tmp_path), "--baseline", str(baseline), "--no-baseline"]
    ) == 1


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out.split()
    assert "TEE001" in out and "MSG003" in out


# -- the meta-test: this repository obeys its own invariants --------------------


def test_repo_src_has_zero_findings():
    findings = run_lint([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_baseline_is_committed_and_empty():
    baseline_path = REPO_SRC.parent / ".repro-lint-baseline.json"
    assert baseline_path.exists()
    assert load_baseline(baseline_path) == set()
