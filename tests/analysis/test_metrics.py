"""Tests for result aggregation and improvement computations."""

import pytest

from repro.analysis.metrics import (
    Summary,
    average_improvements,
    improvement_percent,
    latency_decrease_percent,
    mean,
    summarize_runs,
    throughput_increase_percent,
)
from repro.protocols.system import RunResult


def run(protocol="damysus", tput=10.0, lat=50.0, msgs=100):
    return RunResult(
        protocol=protocol,
        f=1,
        num_replicas=3,
        duration_ms=1000.0,
        committed_blocks=10,
        committed_views=10,
        throughput_kops=tput,
        mean_latency_ms=lat,
        messages_sent=msgs,
        bytes_sent=1000,
        safe=True,
    )


def test_mean():
    assert mean([]) == 0.0
    assert mean([2.0, 4.0]) == 3.0


def test_summarize_runs_averages():
    summary = summarize_runs([run(tput=10.0, lat=40.0), run(tput=20.0, lat=60.0)])
    assert summary.throughput_kops == 15.0
    assert summary.latency_ms == 50.0
    assert summary.repetitions == 2
    assert summary.protocol == "damysus"


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize_runs([])


def test_improvement_percent():
    assert improvement_percent(15.0, 10.0) == pytest.approx(50.0)
    assert improvement_percent(5.0, 10.0) == pytest.approx(-50.0)
    assert improvement_percent(1.0, 0.0) == 0.0


def test_paper_style_improvements():
    """+87.5% throughput means 1.875x; -45% latency means 0.55x."""
    assert throughput_increase_percent(1.875, 1.0) == pytest.approx(87.5)
    assert latency_decrease_percent(55.0, 100.0) == pytest.approx(45.0)
    assert latency_decrease_percent(100.0, 0.0) == 0.0


def test_average_improvements_over_thresholds():
    def s(protocol, f, tput, lat):
        return Summary(protocol, f, 3, tput, lat, 0.0, 1)

    ours = {1: s("damysus", 1, 20.0, 25.0), 2: s("damysus", 2, 15.0, 30.0)}
    base = {1: s("hotstuff", 1, 10.0, 50.0), 2: s("hotstuff", 2, 10.0, 60.0)}
    tput, lat = average_improvements(ours, base)
    assert tput == pytest.approx((100.0 + 50.0) / 2)
    assert lat == pytest.approx(50.0)


def test_average_improvements_skips_missing_baselines():
    def s(protocol, f, tput, lat):
        return Summary(protocol, f, 3, tput, lat, 0.0, 1)

    ours = {1: s("damysus", 1, 20.0, 25.0), 9: s("damysus", 9, 1.0, 1.0)}
    base = {1: s("hotstuff", 1, 10.0, 50.0)}
    tput, lat = average_improvements(ours, base)
    assert tput == pytest.approx(100.0)
