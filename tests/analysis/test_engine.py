"""Edge-case tests for the shared analyzer engine.

``repro lint`` and ``repro analyze`` ride on one finding/suppression/
baseline core (:mod:`repro.analysis.engine`); these tests pin the
corners of that shared behaviour: suppression comments on decorated and
multiline nodes, cross-tool ignore tags, baseline write stability, and
unknown-rule handling.
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import Finding, write_baseline
from repro.analysis.dataflow import run_analyze
from repro.analysis.lint import load_baseline, run_lint
from tests.analysis.test_lint import make_module


# -- suppression spans ----------------------------------------------------------


def test_suppression_on_last_line_of_multiline_call(tmp_path):
    """A Call node spans physical lines; the ignore can sit on any of them."""
    make_module(
        tmp_path,
        "repro.sim.stampy",
        """
        def stamp(time):
            return time.time(
            )  # repro-lint: ignore[DET002]
        """,
    )
    assert run_lint([tmp_path], rules=["DET002"]) == []


def test_suppression_on_decorator_line_of_decorated_class(tmp_path):
    """A decorated class reads - to humans - from its first decorator."""
    make_module(
        tmp_path,
        "repro.core.messages",
        """
        @frozen  # repro-lint: ignore[MSG001]
        class OrphanMsg:
            msg_type = "orphan"
        """,
    )
    make_module(tmp_path, "repro.protocols.proto", "def dispatch(m):\n    return m\n")
    assert run_lint([tmp_path], rules=["MSG001"]) == []


def test_decorated_class_without_suppression_still_fires(tmp_path):
    make_module(
        tmp_path,
        "repro.core.messages",
        """
        @frozen
        class OrphanMsg:
            msg_type = "orphan"
        """,
    )
    make_module(tmp_path, "repro.protocols.proto", "def dispatch(m):\n    return m\n")
    findings = run_lint([tmp_path], rules=["MSG001"])
    assert [(f.rule_id, f.line) for f in findings] == [("MSG001", 3)]


def test_comment_in_compound_statement_body_does_not_silence_header(tmp_path):
    """Suppressing a finding about a class must happen on its header."""
    make_module(
        tmp_path,
        "repro.core.messages",
        """
        class OrphanMsg:
            msg_type = "orphan"  # repro-lint: ignore[MSG001]
        """,
    )
    make_module(tmp_path, "repro.protocols.proto", "def dispatch(m):\n    return m\n")
    findings = run_lint([tmp_path], rules=["MSG001"])
    assert [(f.rule_id, f.line) for f in findings] == [("MSG001", 2)]


def test_lint_and_analyze_ignore_tags_are_interchangeable(tmp_path):
    """One engine, one suppression story: either tag silences either tool."""
    make_module(
        tmp_path,
        "repro.sim.suppressed",
        """
        import random  # repro-analyze: ignore[DET001]
        """,
    )
    assert run_lint([tmp_path], rules=["DET001"]) == []
    make_module(
        tmp_path,
        "repro.tee.fixture",
        """
        class Checker:
            def tee_adopt(self, height):
                self._height = height  # repro-lint: ignore[TAINT001]
        """,
    )
    assert run_analyze([tmp_path], rules=["TAINT001"]) == []


# -- baseline stability ---------------------------------------------------------


def test_write_baseline_is_order_independent_and_stable(tmp_path):
    make_module(
        tmp_path,
        "repro.sim.legacy",
        """
        import random
        import secrets
        """,
    )
    findings = run_lint([tmp_path], rules=["DET001"])
    assert len(findings) == 2
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    write_baseline(first, findings)
    write_baseline(second, list(reversed(findings)))
    assert first.read_text() == second.read_text()
    # Rewriting the same findings is byte-identical (no churn in diffs).
    before = first.read_text()
    write_baseline(first, findings)
    assert first.read_text() == before


def test_baseline_roundtrip_preserves_waivers(tmp_path):
    make_module(tmp_path, "repro.sim.legacy", "import random\n")
    findings = run_lint([tmp_path])
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, findings)
    assert load_baseline(baseline) == {f.key() for f in findings}
    assert run_lint([tmp_path], baseline=load_baseline(baseline)) == []


def test_finding_span_fields_stay_out_of_key_and_json():
    finding = Finding(
        "DET001", "src/x.py", 3, 1, "import of 'random'",
        span_start=2, span_end=5,
    )
    assert finding.key() == "src/x.py::DET001::3"
    assert "span" not in str(finding.to_json())


# -- unknown-rule handling ------------------------------------------------------


def test_unknown_rule_error_names_the_known_rules(tmp_path):
    with pytest.raises(KeyError) as excinfo:
        run_lint([tmp_path], rules=["NOPE999"])
    assert "NOPE999" in str(excinfo.value)
    assert "DET001" in str(excinfo.value)
    with pytest.raises(KeyError) as excinfo:
        run_analyze([tmp_path], rules=["NOPE999"])
    assert "TAINT001" in str(excinfo.value)


def test_rule_filter_is_case_insensitive(tmp_path):
    make_module(tmp_path, "repro.sim.legacy", "import random\n")
    findings = run_lint([tmp_path], rules=["det001"])
    assert [f.rule_id for f in findings] == ["DET001"]
