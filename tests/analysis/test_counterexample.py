"""Tests for the Section 4 counter-example demonstrations."""

from repro.analysis.counterexample import run_checker_scenario, run_counter_scenario


def test_plain_counter_scenario_breaks_safety():
    """The paper's i/j/k scenario: counters alone are insufficient."""
    result = run_counter_scenario()
    assert not result.safe
    assert len(result.oracle.violations) == 1
    violation = result.oracle.violations[0]
    assert violation.index == 0  # conflicting blocks at the same height


def test_counter_scenario_uses_only_genuine_certificates():
    """Every certificate k accepts verifies - the attack needs no forgery."""
    result = run_counter_scenario()
    assert all("ACCEPTED" in line for line in result.log if "verifies" in line)


def test_counter_scenario_log_is_explanatory():
    result = run_counter_scenario()
    text = result.describe()
    assert "VIOLATED" in text
    assert "b'" in text


def test_checker_scenario_preserves_safety():
    result = run_checker_scenario()
    assert result.safe
    assert result.oracle.violations == []


def test_checker_scenario_refuses_both_attacks():
    result = run_checker_scenario()
    assert result.refusals == 2
    text = result.describe()
    assert "PRESERVED" in text
    assert text.count("REFUSED") == 2


def test_scenarios_are_deterministic():
    assert run_counter_scenario().describe() == run_counter_scenario().describe()
    assert run_checker_scenario().describe() == run_checker_scenario().describe()
