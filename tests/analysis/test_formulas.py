"""Analytic latency model vs simulation: they must roughly agree."""

import pytest

from repro.analysis.formulas import mean_one_way_ms, predict_latency
from repro.bench.runner import ExperimentRunner
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.sim.regions import EU_REGIONS

BASIC = ["hotstuff", "damysus-c", "damysus-a", "damysus"]


def simulated_latency(protocol, f, payload=0):
    runner = ExperimentRunner(
        payload_bytes=payload, views_per_run=6, repetitions=2
    )
    return runner.run_cell(protocol, f).latency_ms


@pytest.mark.parametrize("protocol", BASIC)
@pytest.mark.parametrize("f", [1, 4])
def test_prediction_within_tolerance(protocol, f):
    config = SystemConfig(protocol=protocol, f=f, payload_bytes=0)
    predicted = predict_latency(config).total_ms
    measured = simulated_latency(protocol, f)
    assert predicted == pytest.approx(measured, rel=0.45), (predicted, measured)


def test_prediction_orders_protocols():
    """The closed form reproduces the latency ordering at every f."""
    for f in (1, 4, 10):
        predictions = {
            p: predict_latency(SystemConfig(protocol=p, f=f, payload_bytes=0)).total_ms
            for p in BASIC
        }
        assert predictions["damysus"] < predictions["damysus-c"]
        assert predictions["damysus"] < predictions["damysus-a"]
        assert predictions["damysus"] < predictions["hotstuff"]
        assert predictions["damysus-c"] < predictions["hotstuff"]


def test_prediction_grows_with_f():
    latencies = [
        predict_latency(SystemConfig(protocol="damysus", f=f, payload_bytes=0)).total_ms
        for f in (1, 4, 10, 20)
    ]
    assert latencies == sorted(latencies)


def test_payload_raises_predicted_latency():
    small = predict_latency(SystemConfig(protocol="damysus", f=4, payload_bytes=0))
    large = predict_latency(SystemConfig(protocol="damysus", f=4, payload_bytes=256))
    assert large.total_ms > small.total_ms
    assert large.leader_cpu_ms > small.leader_cpu_ms


def test_mean_one_way_reasonable():
    config = SystemConfig(protocol="damysus", f=1, regions=EU_REGIONS)
    mean = mean_one_way_ms(config, 4)  # one node per EU region
    flat = [
        EU_REGIONS.latency(i, j)
        for i in range(4)
        for j in range(4)
        if i != j
    ]
    assert mean == pytest.approx(sum(flat) / len(flat))


def test_chained_protocols_rejected():
    with pytest.raises(ConfigError):
        predict_latency(SystemConfig(protocol="chained-damysus", f=1))


def test_prediction_components_positive():
    pred = predict_latency(SystemConfig(protocol="hotstuff", f=2, payload_bytes=256))
    assert pred.network_ms > 0
    assert pred.leader_cpu_ms > 0
    assert pred.backup_cpu_ms > 0
    assert pred.legs == 7
