"""Tests for the per-view trace collector."""


from repro.analysis.traces import TraceCollector
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def traced_run(protocol, views=5):
    system = ConsensusSystem(small_config(protocol))
    collector = TraceCollector(system)
    system.run_until_views(views, max_time_ms=120_000)
    return system, collector


def test_timeline_covers_committed_views():
    _, collector = traced_run("damysus")
    completed = collector.completed_views()
    assert len(completed) >= 5
    for trace in completed:
        assert trace.proposal_at is not None
        assert trace.first_executed_at >= trace.proposal_at
        assert trace.messages > 0


def test_phase_structure_damysus_vs_hotstuff():
    """Damysus shows 2 certificate fan-outs per view; HotStuff shows 3."""
    _, dam = traced_run("damysus")
    _, hs = traced_run("hotstuff")
    dam_rounds = dam.cert_rounds_per_view()
    hs_rounds = hs.cert_rounds_per_view()
    steady_dam = [dam_rounds[v] for v in sorted(dam_rounds)[1:-1]]
    steady_hs = [hs_rounds[v] for v in sorted(hs_rounds)[1:-1]]
    assert steady_dam and set(steady_dam) == {2}
    assert steady_hs and set(steady_hs) == {3}


def test_view_durations_consistent_with_monitor():
    system, collector = traced_run("damysus")
    mean_trace = sum(t.duration_ms for t in collector.completed_views()) / len(
        collector.completed_views()
    )
    # The monitor measures proposal -> execution per replica; the trace
    # measures proposal -> first execution, so it must be no larger.
    assert mean_trace <= system.monitor.mean_latency_ms() + 1e-6


def test_render_produces_table():
    _, collector = traced_run("chained-damysus")
    text = collector.render()
    assert "view timeline" in text
    assert "duration ms" in text


def test_views_sorted():
    _, collector = traced_run("damysus")
    views = [t.view for t in collector.views()]
    assert views == sorted(views)
