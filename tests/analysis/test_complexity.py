"""Tests for the Table 1 closed forms."""

import pytest

from repro.analysis.complexity import TABLE1_ROWS, expected_messages, table1
from repro.errors import ConfigError
from repro.protocols.registry import SPECS


def test_table1_has_paper_rows():
    names = {row.name for row in TABLE1_ROWS}
    assert {"pbft", "fastbft", "minbft", "cheapbft", "hotstuff", "hotstuff-m",
            "damysus", "chained-damysus"} == names


@pytest.mark.parametrize(
    "name,f,expected",
    [
        ("pbft", 1, 36),  # 18+15+3
        ("minbft", 1, 12),  # 4+6+2
        ("cheapbft", 1, 8),  # 2+4+2
        ("fastbft", 1, 11),  # 6+5
        ("hotstuff", 1, 32),  # 24+8
        ("damysus", 1, 18),  # 12+6
        ("chained-damysus", 1, 18),
        ("hotstuff", 10, 248),
        ("damysus", 10, 126),
    ],
)
def test_normal_case_message_formulas(name, f, expected):
    assert expected_messages(name, f) == expected


def test_ablation_protocol_formulas():
    # Damysus-C: 8 steps x (2f+1); Damysus-A: 6 steps x (3f+1).
    assert expected_messages("damysus-c", 1) == 24
    assert expected_messages("damysus-a", 1) == 24
    assert expected_messages("damysus-c", 2) == 40
    assert expected_messages("damysus-a", 2) == 42


def test_registry_and_table1_agree():
    for name in ("hotstuff", "damysus", "chained-damysus"):
        for f in (1, 2, 10):
            assert SPECS[name].messages_normal_case(f) == expected_messages(name, f)


def test_damysus_strictly_cheaper_than_hotstuff():
    for f in range(1, 50):
        assert expected_messages("damysus", f) < expected_messages("hotstuff", f)
        assert expected_messages("damysus", f) < expected_messages("damysus-c", f)
        assert expected_messages("damysus", f) < expected_messages("damysus-a", f)


def test_view_change_formulas():
    rows = {row["protocol"]: row for row in table1(1)}
    assert rows["pbft"]["msgs_view_change"] == 16  # 9+6+1
    assert rows["minbft"]["msgs_view_change"] == 15  # 8+6+1
    assert rows["damysus"]["msgs_view_change"] is None  # streamlined


def test_unknown_protocol_raises():
    with pytest.raises(ConfigError):
        expected_messages("paxos", 1)


def test_table1_rows_have_presentation_fields():
    for row in table1(3):
        assert row["replicas"]
        assert row["comm_steps"]
        assert isinstance(row["msgs_normal"], int)
        assert isinstance(row["optimistic"], bool)
