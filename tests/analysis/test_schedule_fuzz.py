"""Schedule fuzzing: safety must survive every sampled hostile timing."""

import pytest

from repro.analysis.schedule_fuzz import draw_case, fuzz, run_case
from repro.protocols.registry import PROTOCOL_ORDER


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_safety_under_fuzzed_schedules(protocol):
    outcomes = fuzz(protocol, f=1, cases=12, base_seed=100)
    unsafe = [o for o in outcomes if not o.safe]
    assert unsafe == [], f"unsafe schedules: {[o.case for o in unsafe]}"


@pytest.mark.parametrize("protocol", ["damysus", "hotstuff"])
def test_fuzzed_runs_make_progress_after_gst(protocol):
    """Every fuzzed run (crashes included, all <= max faults) commits."""
    outcomes = fuzz(protocol, f=1, cases=10, base_seed=300)
    assert all(o.committed >= 3 for o in outcomes), [
        (o.case, o.committed) for o in outcomes
    ]


def test_cases_are_deterministic():
    assert draw_case("damysus", 1, 7) == draw_case("damysus", 1, 7)
    assert draw_case("damysus", 1, 7) != draw_case("damysus", 1, 8)


def test_cases_respect_fault_budget():
    for seed in range(40):
        case = draw_case("damysus", 2, seed)
        assert len(case.crashed) <= 2  # f = 2 at N = 5
        case_hs = draw_case("hotstuff", 2, seed)
        assert len(case_hs.crashed) <= 2


def test_outcomes_reproducible():
    case = draw_case("damysus", 1, 11)
    first = run_case("damysus", 1, case)
    second = run_case("damysus", 1, case)
    assert first == second


def test_fuzz_at_larger_f():
    outcomes = fuzz("damysus", f=2, cases=6, base_seed=500)
    assert all(o.safe for o in outcomes)
