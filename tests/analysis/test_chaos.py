"""Tests for the chaos harness: safety under faults, liveness after healing."""

import pytest

from repro.analysis.chaos import (
    run_chaos,
    run_standard_chaos,
    standard_chaos_plan,
)
from repro.errors import SimulationError
from repro.sim.faults import FaultPlan


def test_damysus_standard_chaos_is_safe_and_recovers():
    """The issue's headline demo: f crash/recover cycles under 20% loss
    plus a partition - no safety violation, liveness once healed."""
    report = run_standard_chaos("damysus", f=1, seed=1)
    assert report.safe
    assert report.violation is None
    assert report.live_after_heal
    assert report.ok
    assert report.crash_cycles == 1
    assert report.messages_dropped > 0
    assert report.views_committed_after_heal >= 3


def test_liveness_within_bounded_views_after_partition_heals():
    """After the partition heals the system settles within the budget:
    commits in fresh views arrive well before the liveness time cap."""
    report = run_standard_chaos("damysus", f=1, seed=2, loss=0.0, crashes=False)
    assert report.ok
    # Healing at 2.5 s; a handful of timeout-lengths suffices to settle.
    assert report.duration_ms < report.healed_at_ms + 10_000.0


def test_hotstuff_survives_loss_only_chaos():
    report = run_standard_chaos(
        "hotstuff", f=1, seed=3, loss=0.15, partition=False, crashes=False
    )
    assert report.ok


def test_chaos_reports_are_deterministic_per_seed():
    first = run_standard_chaos("damysus", f=1, seed=11)
    second = run_standard_chaos("damysus", f=1, seed=11)
    assert first == second


def test_different_seeds_generally_differ():
    a = run_standard_chaos("damysus", f=1, seed=1)
    b = run_standard_chaos("damysus", f=1, seed=12)
    assert (a.messages_dropped, a.duration_ms, a.timeouts_fired) != (
        b.messages_dropped,
        b.duration_ms,
        b.timeouts_fired,
    )


def test_unhealing_plan_is_rejected():
    with pytest.raises(SimulationError):
        run_chaos("damysus", plan=FaultPlan().lossy_links(0.1))  # no end_ms


def test_standard_plan_shape():
    plan = standard_chaos_plan(4, 1)
    assert len(plan.rules) == 2  # loss + partition
    assert len(plan.crashes) == 1
    assert plan.healed_by_ms() == 4_000.0
    bare = standard_chaos_plan(4, 1, loss=0.0, partition=False, crashes=False)
    assert bare.rules == [] and bare.crashes == []


def test_report_describe_mentions_the_verdicts():
    report = run_standard_chaos("damysus", f=1, seed=1)
    text = report.describe()
    assert "safety               OK" in text
    assert "liveness after heal  OK" in text
