"""Smoke tests: every shipped example must keep running.

Examples are documentation that executes; these tests run each example's
``main()`` in-process (stdout captured) so refactors cannot silently
break them.  The saturation sweep is exercised at reduced scale through
its underlying experiment function instead (it takes ~20 s at example
scale).
"""

import importlib
import sys


sys.path.insert(0, "examples")


def run_example(module_name: str, capsys) -> str:
    module = importlib.import_module(module_name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "DAMYSUS quickstart" in out
    assert "safety              : OK" in out
    assert "executed chain" in out


def test_byzantine_faults(capsys):
    out = run_example("byzantine_faults", capsys)
    assert "safety VIOLATED" in out  # the counter scenario
    assert "safety PRESERVED" in out  # the checker scenario
    assert out.count("safety OK") >= 3  # the live adversary runs


def test_chained_pipeline(capsys):
    out = run_example("chained_pipeline", capsys)
    assert "chained-hotstuff" in out
    assert "chained-damysus" in out
    assert "pipeline" in out


def test_replicated_kvstore(capsys):
    out = run_example("replicated_kvstore", capsys)
    assert "all replicas converged" in out
    assert "logins=3" in out


def test_chaos_run(capsys):
    out = run_example("chaos_run", capsys)
    assert "safety               OK" in out
    assert "liveness after heal  OK" in out
    assert "replay is bit-identical" in out


def test_regional_deployment_reduced(capsys):
    """The regional example at its own (already reduced) scale."""
    out = run_example("regional_deployment", capsys)
    assert "Fig 6a" in out and "Fig 7a" in out
    assert "damysus vs hotstuff" in out


def test_saturation_sweep_reduced():
    """Underlying fig9 sweep at a scale suitable for the test suite."""
    from repro.bench.experiments import fig9

    report = fig9(
        intervals_ms=[2.0, 0.5],
        num_clients=2,
        duration_ms=400.0,
        protocols=["damysus"],
    )
    assert len(report.rows) == 2
