"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    code = main(
        ["run", "--protocol", "damysus", "--f", "1", "--views", "3",
         "--payload", "0", "--block-size", "10"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "damysus" in out
    assert "safety             OK" in out


def test_run_with_crash(capsys):
    code = main(
        ["run", "--protocol", "hotstuff", "--views", "3", "--payload", "0",
         "--block-size", "10", "--crash", "3"]
    )
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_compare_command(capsys):
    code = main(
        ["compare", "--protocols", "hotstuff", "damysus", "--views", "3",
         "--payload", "0"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "hotstuff" in out and "damysus" in out


def test_counterexample_command(capsys):
    code = main(["counterexample"])
    out = capsys.readouterr().out
    assert code == 0
    assert "VIOLATED" in out  # the counter scenario breaks
    assert "PRESERVED" in out  # the checker scenario holds


def test_protocols_command(capsys):
    code = main(["protocols"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("hotstuff", "damysus", "chained-damysus", "fast-hotstuff"):
        assert name in out


def test_experiment_table1(capsys):
    code = main(["experiment", "table1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Table 1" in out
    assert "pbft" in out


def test_chaos_command(capsys):
    code = main(["chaos", "--protocol", "damysus", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "safety               OK" in out
    assert "liveness after heal  OK" in out
    assert "crash/recover cycles 1" in out


def test_chaos_command_loss_only(capsys):
    code = main(
        ["chaos", "--protocol", "hotstuff", "--loss", "0.1", "--seed", "2",
         "--no-partition", "--no-crash"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "crash/recover cycles 0" in out


def test_bench_command_parallel(capsys):
    code = main(
        ["bench", "fig6a", "--thresholds", "1", "--views", "3", "--reps", "1",
         "--jobs", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Fig 6a" in out
    assert "damysus" in out


def test_profile_command(capsys):
    code = main(
        ["profile", "--protocol", "hotstuff", "--f", "1", "--views", "3",
         "--payload", "0", "--top", "5"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cumtime" in out  # cProfile table
    assert "events fired" in out
    assert "wall s / sim s" in out


def test_perf_write_and_check(tmp_path, capsys):
    baseline = tmp_path / "bench.json"
    code = main(
        ["perf", "--write-baseline", "--baseline", str(baseline), "--quick",
         "--jobs", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert baseline.exists()
    assert "cache_speedup" in out
    # Checking against the just-written baseline on the same machine must
    # not report a pathological regression (generous threshold).
    code = main(["perf", "--check", "--baseline", str(baseline), "--jobs", "1",
                 "--threshold", "10.0"])
    out = capsys.readouterr().out
    assert "cells compared" in out


def test_perf_check_without_baseline(tmp_path, capsys):
    code = main(["perf", "--check", "--baseline", str(tmp_path / "missing.json")])
    assert code == 2
    assert "no baseline" in capsys.readouterr().err


def test_parser_rejects_unknown_protocol():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--protocol", "nope"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_campaign_list(capsys):
    code = main(["campaign", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("silent", "equivocate", "slow-drip", "withhold",
                 "partition", "sync-forge", "amnesia", "spam"):
        assert name in out


def test_campaign_small_matrix(capsys):
    code = main(
        ["campaign", "--protocols", "damysus", "--adversaries", "silent",
         "--plans", "clean", "--topologies", "eu"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out
    assert "0 unsafe, 0 stalled" in out


def test_campaign_digest_is_deterministic(capsys):
    argv = ["campaign", "--protocols", "damysus", "--adversaries", "spam",
            "--plans", "clean", "--topologies", "eu", "--seed", "5",
            "--digest-only"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    assert len(first.strip()) == 64  # a full sha256 hex digest


def test_campaign_json_output(capsys):
    import json

    code = main(
        ["campaign", "--protocols", "damysus", "--adversaries", "silent",
         "--plans", "clean", "--topologies", "eu", "--json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 0
    assert data["cells"][0]["verdict"] == "PASS"
    assert data["digest"]


def test_chaos_accepts_timeout_knobs(capsys):
    code = main(
        ["chaos", "--protocol", "damysus", "--seed", "1",
         "--max-timeout-ms", "2000", "--timeout-jitter", "0.05"]
    )
    assert code == 0
    assert "safety               OK" in capsys.readouterr().out
