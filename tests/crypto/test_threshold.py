"""Tests for the threshold signature scheme."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import Signature
from repro.crypto.threshold import (
    GROUP_SIGNER_ID,
    ThresholdScheme,
    is_group_signature,
)
from repro.errors import CryptoError, VerificationError

MSG = b"threshold-message"


@pytest.fixture
def scheme():
    base = HmacScheme(secret=b"threshold-tests")
    for signer in range(5):
        base.keygen(signer)
    return ThresholdScheme(base, "grp", members=[0, 1, 2, 3], threshold=3)


def shares(scheme, signers, message=MSG):
    return [scheme.sign_share(s, message) for s in signers]


def test_combine_and_verify(scheme):
    group = scheme.combine(MSG, shares(scheme, [0, 1, 2]))
    assert is_group_signature(group)
    assert group.signer == GROUP_SIGNER_ID
    assert scheme.verify_group(MSG, group)
    assert not scheme.verify_group(b"other", group)


def test_combine_requires_threshold(scheme):
    with pytest.raises(VerificationError):
        scheme.combine(MSG, shares(scheme, [0, 1]))


def test_combine_rejects_duplicates(scheme):
    two = shares(scheme, [0, 1])
    with pytest.raises(VerificationError):
        scheme.combine(MSG, [*two, two[0]])


def test_combine_rejects_non_members(scheme):
    base_shares = shares(scheme, [0, 1])
    outsider = scheme.base.sign(4, MSG)  # signer 4 is not a member
    with pytest.raises(VerificationError):
        scheme.combine(MSG, [*base_shares, outsider])


def test_combine_rejects_invalid_shares(scheme):
    good = shares(scheme, [0, 1])
    forged = Signature(2, b"\x00" * 32, "hmac")
    with pytest.raises(VerificationError):
        scheme.combine(MSG, [*good, forged])


def test_group_signature_constant_size(scheme):
    g3 = scheme.combine(MSG, shares(scheme, [0, 1, 2]))
    g4 = scheme.combine(MSG, shares(scheme, [0, 1, 2, 3]))
    assert len(g3.data) == len(g4.data) == 32


def test_distinct_groups_do_not_cross_verify():
    base = HmacScheme(secret=b"x")
    for s in range(4):
        base.keygen(s)
    g1 = ThresholdScheme(base, "a", [0, 1, 2], 2)
    g2 = ThresholdScheme(base, "b", [0, 1, 2], 2)
    sig = g1.combine(MSG, [g1.sign_share(0, MSG), g1.sign_share(1, MSG)])
    assert not g2.verify_group(MSG, sig)


def test_invalid_threshold_rejected():
    base = HmacScheme()
    with pytest.raises(CryptoError):
        ThresholdScheme(base, "g", [0, 1], threshold=3)
    with pytest.raises(CryptoError):
        ThresholdScheme(base, "g", [0, 1], threshold=0)


def test_sign_share_requires_membership(scheme):
    with pytest.raises(CryptoError):
        scheme.sign_share(9, MSG)
