"""Tests for key pairs and the shared directory."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import (
    KeyDirectory,
    is_tee_signer,
    replica_of_tee_signer,
    tee_signer_id,
)
from repro.errors import CryptoError


def test_tee_signer_ids_disjoint_from_replicas():
    for replica in range(100):
        assert tee_signer_id(replica) != replica
        assert is_tee_signer(tee_signer_id(replica))
        assert not is_tee_signer(replica)


def test_tee_signer_roundtrip():
    assert replica_of_tee_signer(tee_signer_id(7)) == 7


def test_replica_of_tee_signer_rejects_plain_ids():
    with pytest.raises(CryptoError):
        replica_of_tee_signer(5)


def test_directory_kinds():
    scheme = HmacScheme()
    directory = KeyDirectory(scheme)
    directory.register_replica(3)
    directory.register_tee(3)
    assert directory.kind_of(3) == "replica"
    assert directory.kind_of(tee_signer_id(3)) == "tee"
    assert directory.kind_of(4) is None
    assert directory.known(3)
    assert not directory.known(4)


def test_registration_is_idempotent():
    scheme = HmacScheme()
    directory = KeyDirectory(scheme)
    pair1 = directory.register_replica(1)
    pair2 = directory.register_replica(1)
    assert pair1 == pair2


def test_registered_signer_can_sign():
    scheme = HmacScheme()
    directory = KeyDirectory(scheme)
    directory.register_tee(2)
    sig = scheme.sign(tee_signer_id(2), b"m")
    assert scheme.verify(b"m", sig)


def test_replica_signature_never_verifies_as_tee():
    """A replica key must not be able to impersonate its TEE."""
    scheme = HmacScheme()
    directory = KeyDirectory(scheme)
    directory.register_replica(1)
    directory.register_tee(1)
    replica_sig = scheme.sign(1, b"m")
    assert directory.kind_of(replica_sig.signer) == "replica"
    # The signature itself is valid, but its signer identity is a replica,
    # which is exactly what TEE verification paths check.
    assert scheme.verify(b"m", replica_sig)
