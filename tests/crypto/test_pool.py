"""VerifyPool: sharded verification must be bit-identical to sequential."""

import asyncio

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.pool import (
    VerifyPool,
    available_cpus,
    build_scheme,
    resolve_verify_jobs,
)
from repro.crypto.scheme import Signature
from repro.crypto.schnorr import GROUP_TEST, SchnorrScheme
from repro.errors import CryptoError


@pytest.fixture
def hmac_scheme():
    scheme = HmacScheme(secret=b"pool-test")
    for signer in range(5):
        scheme.keygen(signer)
    return scheme


@pytest.fixture
def schnorr():
    scheme = SchnorrScheme(GROUP_TEST)
    for signer in range(5):
        scheme.keygen(signer)
    return scheme


def mixed_pairs(scheme, count=12):
    """Pairs with a known-bad signature sprinkled at every third slot."""
    pairs = []
    for i in range(count):
        message = f"pool-msg-{i}".encode()
        sig = scheme.sign(i % 5, message)
        if i % 3 == 2:
            sig = Signature(sig.signer, b"\x00" * len(sig.data), sig.scheme)
        pairs.append((message, sig))
    return pairs


# -- replication spec rebuild ------------------------------------------------


def test_build_scheme_rebuilds_hmac_verifier(hmac_scheme):
    clone = build_scheme(hmac_scheme.replication_spec())
    message = b"replicated"
    sig = hmac_scheme.sign(3, message)
    assert clone.verify(message, sig)
    assert not clone.verify(b"other", sig)


def test_build_scheme_rebuilds_schnorr_verifier(schnorr):
    clone = build_scheme(schnorr.replication_spec())
    message = b"replicated"
    sig = schnorr.sign(2, message)
    assert clone.verify(message, sig)
    assert not clone.verify(b"other", sig)


def test_build_scheme_rejects_unknown_kind():
    with pytest.raises(CryptoError):
        build_scheme({"kind": "rot13"})


# -- job resolution ----------------------------------------------------------


def test_resolve_verify_jobs():
    assert resolve_verify_jobs(0) == available_cpus()
    assert resolve_verify_jobs(1) == 1
    assert resolve_verify_jobs(4) == 4
    with pytest.raises(CryptoError):
        resolve_verify_jobs(-1)


def test_available_cpus_positive():
    assert available_cpus() >= 1


# -- identity with the sequential path ---------------------------------------


def test_inline_pool_matches_sequential(hmac_scheme):
    pairs = mixed_pairs(hmac_scheme)
    with VerifyPool(hmac_scheme, jobs=1) as pool:
        assert pool.verify_many(pairs) == hmac_scheme.verify_many(pairs)


def test_sharded_pool_matches_sequential(hmac_scheme):
    pairs = mixed_pairs(hmac_scheme, count=17)  # odd count: ragged last chunk
    with VerifyPool(hmac_scheme, jobs=2, chunk=3) as pool:
        assert pool.verify_many(pairs) == hmac_scheme.verify_many(pairs)


def test_sharded_pool_matches_sequential_schnorr(schnorr):
    pairs = mixed_pairs(schnorr, count=7)
    with VerifyPool(schnorr, jobs=2, chunk=2) as pool:
        assert pool.verify_many(pairs) == schnorr.verify_many(pairs)


def test_bad_signature_positions_preserved(hmac_scheme):
    pairs = mixed_pairs(hmac_scheme, count=9)
    expected = [i % 3 != 2 for i in range(9)]
    with VerifyPool(hmac_scheme, jobs=2, chunk=2) as pool:
        assert pool.verify_many(pairs) == expected


def test_empty_pairs(hmac_scheme):
    with VerifyPool(hmac_scheme, jobs=2) as pool:
        assert pool.verify_many([]) == []


def test_async_matches_sync(hmac_scheme):
    pairs = mixed_pairs(hmac_scheme, count=10)

    async def run():
        with VerifyPool(hmac_scheme, jobs=2, chunk=3) as pool:
            return await pool.verify_many_async(pairs)

    assert asyncio.run(run()) == hmac_scheme.verify_many(pairs)


def test_close_is_idempotent(hmac_scheme):
    pool = VerifyPool(hmac_scheme, jobs=2)
    pool.verify_many(mixed_pairs(hmac_scheme, count=3))
    pool.close()
    pool.close()
