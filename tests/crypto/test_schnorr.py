"""Tests for the from-scratch Schnorr signature scheme."""

import pytest

from repro.crypto.scheme import Signature
from repro.crypto.schnorr import GROUP_2048, GROUP_TEST, SchnorrGroup, SchnorrScheme
from repro.errors import CryptoError


@pytest.fixture
def scheme():
    s = SchnorrScheme(GROUP_TEST)
    s.keygen(1)
    s.keygen(2)
    return s


def test_groups_are_wellformed():
    for group in (GROUP_TEST, GROUP_2048):
        assert pow(group.g, group.q, group.p) == 1  # g has order dividing q
        assert pow(group.g, 2, group.p) != 1  # and is not trivial


def test_test_prime_is_safe_prime():
    # Miller-Rabin on p and q = (p-1)/2 with fixed witnesses.
    def is_probable_prime(n: int) -> bool:
        if n % 2 == 0:
            return n == 2
        d, r = n - 1, 0
        while d % 2 == 0:
            d //= 2
            r += 1
        for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
            x = pow(a, d, n)
            if x in (1, n - 1):
                continue
            for _ in range(r - 1):
                x = pow(x, 2, n)
                if x == n - 1:
                    break
            else:
                return False
        return True

    assert is_probable_prime(GROUP_TEST.p)
    assert is_probable_prime(GROUP_TEST.q)


def test_sign_verify_roundtrip(scheme):
    sig = scheme.sign(1, b"message")
    assert scheme.verify(b"message", sig)


def test_verify_rejects_wrong_message(scheme):
    sig = scheme.sign(1, b"message")
    assert not scheme.verify(b"other", sig)


def test_verify_rejects_wrong_signer_claim(scheme):
    sig = scheme.sign(1, b"message")
    forged = Signature(signer=2, data=sig.data, scheme=sig.scheme)
    assert not scheme.verify(b"message", forged)


def test_verify_rejects_tampered_signature(scheme):
    sig = scheme.sign(1, b"message")
    tampered = Signature(1, bytes([sig.data[0] ^ 1]) + sig.data[1:], sig.scheme)
    assert not scheme.verify(b"message", tampered)


def test_verify_rejects_wrong_length(scheme):
    sig = scheme.sign(1, b"message")
    assert not scheme.verify(b"message", Signature(1, sig.data[:-1], sig.scheme))


def test_verify_rejects_unknown_signer(scheme):
    sig = scheme.sign(1, b"m")
    assert not scheme.verify(b"m", Signature(99, sig.data, sig.scheme))


def test_verify_rejects_other_scheme_tag(scheme):
    sig = scheme.sign(1, b"m")
    assert not scheme.verify(b"m", Signature(1, sig.data, "hmac"))


def test_sign_without_key_raises(scheme):
    with pytest.raises(CryptoError):
        scheme.sign(42, b"m")


def test_signing_is_deterministic(scheme):
    assert scheme.sign(1, b"m").data == scheme.sign(1, b"m").data


def test_different_signers_produce_different_signatures(scheme):
    assert scheme.sign(1, b"m").data != scheme.sign(2, b"m").data


def test_keygen_idempotent(scheme):
    pub = scheme.public_key(1)
    scheme.keygen(1)
    assert scheme.public_key(1) == pub


def test_public_key_unknown_raises(scheme):
    with pytest.raises(CryptoError):
        scheme.public_key(7)


def test_verify_all_requires_distinct_signers(scheme):
    sig1 = scheme.sign(1, b"m")
    sig2 = scheme.sign(2, b"m")
    assert scheme.verify_all(b"m", [sig1, sig2])
    assert not scheme.verify_all(b"m", [sig1, sig1])


def test_2048_group_roundtrip():
    scheme = SchnorrScheme(GROUP_2048)
    scheme.keygen(5)
    sig = scheme.sign(5, b"big-group")
    assert scheme.verify(b"big-group", sig)
    assert not scheme.verify(b"other", sig)


def test_invalid_group_rejected():
    # 15 = 3 * 5 is not a safe prime and g=4 has tiny order mod small p.
    with pytest.raises(CryptoError):
        SchnorrGroup("bad", 23, 5)  # 5 generates the full group, order 22 != 11
