"""Batch verification: the joint check must equal per-signature checking."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import Signature
from repro.crypto.schnorr import GROUP_TEST, SchnorrScheme

MESSAGE = b"batch-verify-message"


@pytest.fixture
def schnorr():
    scheme = SchnorrScheme(GROUP_TEST)
    for signer in range(5):
        scheme.keygen(signer)
    return scheme


@pytest.fixture
def hmac_scheme():
    scheme = HmacScheme(secret=b"batch-test")
    for signer in range(5):
        scheme.keygen(signer)
    return scheme


def qc_pairs(scheme, message=MESSAGE, signers=range(5)):
    return [(message, scheme.sign(signer, message)) for signer in signers]


# -- Schnorr: the algebraic batch equation -----------------------------------


def test_all_valid_batch_accepts(schnorr):
    assert schnorr.verify_many(qc_pairs(schnorr)) == [True] * 5


def test_batch_equals_per_signature_loop(schnorr):
    pairs = qc_pairs(schnorr)
    loop = [schnorr.verify(m, sig) for m, sig in pairs]
    assert schnorr.verify_many(pairs) == loop


def test_single_bad_signature_is_identified(schnorr):
    pairs = qc_pairs(schnorr)
    bad = Signature(pairs[2][1].signer, pairs[3][1].data, pairs[2][1].scheme)
    pairs[2] = (pairs[2][0], bad)
    outcomes = schnorr.verify_many(pairs)
    assert outcomes == [True, True, False, True, True]


def test_tampered_signature_bytes_rejected(schnorr):
    pairs = qc_pairs(schnorr)
    sig = pairs[0][1]
    flipped = bytes([sig.data[0] ^ 1]) + sig.data[1:]
    pairs[0] = (pairs[0][0], Signature(sig.signer, flipped, sig.scheme))
    assert schnorr.verify_many(pairs)[0] is False
    assert schnorr.verify_many(pairs)[1:] == [True] * 4


def test_cross_message_batch(schnorr):
    # Each signer signs a different payload - the new-view-report shape.
    pairs = [
        (f"report-{signer}".encode(), schnorr.sign(signer, f"report-{signer}".encode()))
        for signer in range(5)
    ]
    assert schnorr.verify_many(pairs) == [True] * 5
    swapped = list(pairs)
    swapped[1] = (pairs[1][0], pairs[4][1])  # signature over the wrong message
    assert schnorr.verify_many(swapped) == [True, False, True, True, True]


def test_batch_is_deterministic(schnorr):
    pairs = qc_pairs(schnorr)
    assert schnorr.verify_many(pairs) == schnorr.verify_many(pairs)


def test_unknown_signer_in_batch(schnorr):
    pairs = qc_pairs(schnorr)
    stranger = Signature(99, pairs[0][1].data, pairs[0][1].scheme)
    pairs.append((MESSAGE, stranger))
    assert schnorr.verify_many(pairs) == [True] * 5 + [False]


def test_wrong_scheme_tag_in_batch(schnorr):
    pairs = qc_pairs(schnorr)
    pairs[1] = (pairs[1][0], Signature(1, pairs[1][1].data, "hmac"))
    assert schnorr.verify_many(pairs)[1] is False


def test_verify_batch_shared_message(schnorr):
    sigs = [sig for _, sig in qc_pairs(schnorr)]
    assert schnorr.verify_batch(MESSAGE, sigs)
    assert not schnorr.verify_batch(b"other", sigs)


def test_singleton_and_empty_batches(schnorr):
    assert schnorr.verify_many([]) == []
    pair = (MESSAGE, schnorr.sign(0, MESSAGE))
    assert schnorr.verify_many([pair]) == [True]


# -- HMAC: the fused single-pass loop ----------------------------------------


def test_hmac_batch_equals_loop(hmac_scheme):
    pairs = qc_pairs(hmac_scheme)
    bad = Signature(3, b"\x00" * 32, pairs[0][1].scheme)
    pairs[3] = (pairs[3][0], bad)
    loop = [hmac_scheme.verify(m, sig) for m, sig in pairs]
    assert hmac_scheme.verify_many(pairs) == loop
    assert loop == [True, True, True, False, True]


def test_hmac_batch_rejects_unknown_signer(hmac_scheme):
    sig = hmac_scheme.sign(1, MESSAGE)
    stranger = Signature(77, sig.data, sig.scheme)
    assert hmac_scheme.verify_many([(MESSAGE, stranger)]) == [False]


# -- memo integration --------------------------------------------------------


def test_verify_many_cached_memoizes(schnorr):
    pairs = qc_pairs(schnorr)
    assert schnorr.verify_many_cached(pairs) == [True] * 5
    for message, sig in pairs:
        assert schnorr.cached_verification(message, sig) is True
    # Second call is pure cache; outcomes unchanged.
    assert schnorr.verify_many_cached(pairs) == [True] * 5


def test_verify_many_cached_mixed_hits_and_misses(schnorr):
    pairs = qc_pairs(schnorr)
    schnorr.verify_many_cached(pairs[:2])
    assert schnorr.verify_many_cached(pairs) == [True] * 5


def test_verify_all_rejects_duplicate_signers(schnorr):
    sig = schnorr.sign(1, MESSAGE)
    assert not schnorr.verify_all(MESSAGE, [sig, sig])


def test_verify_all_batches_quorum(schnorr):
    sigs = [sig for _, sig in qc_pairs(schnorr)]
    assert schnorr.verify_all(MESSAGE, sigs)
