"""Tests for the fast HMAC simulation scheme."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import SIGNATURE_WIRE_SIZE, Signature
from repro.errors import CryptoError


@pytest.fixture
def scheme():
    s = HmacScheme(secret=b"unit")
    s.keygen(1)
    s.keygen(2)
    return s


def test_roundtrip(scheme):
    sig = scheme.sign(1, b"m")
    assert scheme.verify(b"m", sig)
    assert not scheme.verify(b"n", sig)


def test_signer_binding(scheme):
    sig = scheme.sign(1, b"m")
    assert not scheme.verify(b"m", Signature(2, sig.data, sig.scheme))


def test_unknown_signer(scheme):
    with pytest.raises(CryptoError):
        scheme.sign(9, b"m")
    sig = scheme.sign(1, b"m")
    assert not scheme.verify(b"m", Signature(9, sig.data, sig.scheme))


def test_scheme_tag_checked(scheme):
    sig = scheme.sign(1, b"m")
    assert not scheme.verify(b"m", Signature(1, sig.data, "schnorr"))


def test_distinct_instances_do_not_cross_verify():
    a = HmacScheme(secret=b"a")
    b = HmacScheme(secret=b"b")
    a.keygen(1)
    b.keygen(1)
    sig = a.sign(1, b"m")
    assert not b.verify(b"m", sig)


def test_declared_wire_size_matches_ecdsa(scheme):
    assert scheme.sign(1, b"m").wire_size() == SIGNATURE_WIRE_SIZE == 64


def test_verify_all(scheme):
    sigs = [scheme.sign(1, b"m"), scheme.sign(2, b"m")]
    assert scheme.verify_all(b"m", sigs)
    assert not scheme.verify_all(b"m", [*sigs, scheme.sign(1, b"m")])
