"""Tests for hashing and canonical field encoding."""

import pytest

from repro.crypto.hashing import (
    HASH_SIZE,
    encode_fields,
    hash_block_fields,
    hash_fields,
    sha256,
)


def test_sha256_size_and_stability():
    digest = sha256(b"hello")
    assert len(digest) == HASH_SIZE
    assert digest == sha256(b"hello")
    assert digest != sha256(b"hello!")


def test_encode_distinguishes_types():
    # The same surface value under different types must encode differently.
    assert encode_fields((1,)) != encode_fields(("1",))
    assert encode_fields((b"1",)) != encode_fields(("1",))
    assert encode_fields((True,)) != encode_fields((1,))
    assert encode_fields((None,)) != encode_fields((0,))
    assert encode_fields((None,)) != encode_fields((b"",))


def test_encode_distinguishes_boundaries():
    # Concatenation attacks: ("ab","c") must differ from ("a","bc").
    assert encode_fields(("ab", "c")) != encode_fields(("a", "bc"))
    assert encode_fields((b"ab", b"c")) != encode_fields((b"a", b"bc"))


def test_encode_distinguishes_arity():
    assert encode_fields(()) != encode_fields((None,))
    assert encode_fields((1, 2)) != encode_fields((1, 2, None))


def test_encode_negative_ints():
    assert encode_fields((-1,)) != encode_fields((1,))
    assert encode_fields((-1,)) != encode_fields((255,))


def test_encode_nested_sequences():
    assert encode_fields(((1, 2), 3)) != encode_fields((1, (2, 3)))
    assert encode_fields(([1, 2],)) == encode_fields(((1, 2),))


def test_encode_rejects_unknown_types():
    with pytest.raises(TypeError):
        encode_fields((object(),))


def test_hash_fields_stable():
    fields = ("commit", b"\x01" * 32, 5, None, "prep_p")
    assert hash_fields(fields) == hash_fields(fields)


def test_hash_block_fields_depends_on_parent():
    payload = sha256(b"payload")
    h1 = hash_block_fields(b"\x00" * 32, 1, payload)
    h2 = hash_block_fields(b"\x01" * 32, 1, payload)
    assert h1 != h2


def test_hash_block_fields_depends_on_view():
    payload = sha256(b"payload")
    parent = b"\x00" * 32
    assert hash_block_fields(parent, 1, payload) != hash_block_fields(parent, 2, payload)
