"""Verification-memo eviction: bounded memory without a latency cliff."""

import pytest

import repro.crypto.scheme as scheme_mod
from repro import perf
from repro.crypto.hmac_scheme import HmacScheme


@pytest.fixture
def scheme():
    s = HmacScheme(secret=b"cache-test")
    s.keygen(1)
    return s


def fill(scheme, count, start=0):
    pairs = []
    for i in range(start, start + count):
        message = f"msg-{i}".encode()
        sig = scheme.sign(1, message)
        scheme.verify_cached(message, sig)
        pairs.append((message, sig))
    return pairs


def test_eviction_drops_oldest_half_not_everything(scheme, monkeypatch):
    monkeypatch.setattr(scheme_mod, "_VERIFY_CACHE_MAX", 8)
    old = fill(scheme, 8)
    assert len(scheme._verify_cache) == 8
    # The 9th entry triggers eviction of the *oldest half* only - the
    # regression was a full clear(), which made the next quorum
    # certificate re-verify every signature at once.
    extra = fill(scheme, 1, start=8)
    assert len(scheme._verify_cache) == 5  # 4 survivors + the new entry
    for message, sig in old[:4]:
        assert scheme.cached_verification(message, sig) is None
    for message, sig in old[4:]:
        assert scheme.cached_verification(message, sig) is True
    assert scheme.cached_verification(*extra[0]) is True


def test_eviction_preserves_correctness(scheme, monkeypatch):
    monkeypatch.setattr(scheme_mod, "_VERIFY_CACHE_MAX", 4)
    pairs = fill(scheme, 20)  # many evictions along the way
    for message, sig in pairs:
        assert scheme.verify_cached(message, sig)  # recomputed if evicted
    assert len(scheme._verify_cache) <= 4 + 1


def test_cache_never_exceeds_cap_plus_one(scheme, monkeypatch):
    monkeypatch.setattr(scheme_mod, "_VERIFY_CACHE_MAX", 6)
    for i in range(50):
        message = f"bulk-{i}".encode()
        scheme.verify_cached(message, scheme.sign(1, message))
        assert len(scheme._verify_cache) <= 7


def test_prime_verification_respects_cap(scheme, monkeypatch):
    monkeypatch.setattr(scheme_mod, "_VERIFY_CACHE_MAX", 4)
    pairs = []
    for i in range(10):
        message = f"primed-{i}".encode()
        pairs.append((message, scheme.sign(1, message)))
    scheme.prime_verification(pairs, [True] * len(pairs))
    assert len(scheme._verify_cache) <= 5
    # The most recent primed entries survived.
    assert scheme.cached_verification(*pairs[-1]) is True


def test_keygen_invalidates_memo(scheme):
    message = b"before-keygen"
    sig = scheme.sign(1, message)
    scheme.verify_cached(message, sig)
    assert scheme.cached_verification(message, sig) is True
    scheme.keygen(2)
    assert scheme.cached_verification(message, sig) is None


def test_caches_disabled_skips_memo(scheme):
    message = b"uncached"
    sig = scheme.sign(1, message)
    perf.set_caches_enabled(False)
    try:
        assert scheme.verify_cached(message, sig)
        scheme.prime_verification([(message, sig)], [True])
        assert scheme.cached_verification(message, sig) is None
    finally:
        perf.set_caches_enabled(True)
