"""Tests for the key-value state machine."""

import pytest

from repro.app.kvstore import (
    OP_DELETE,
    OP_GET,
    OP_INCREMENT,
    OP_PUT,
    KVCommand,
    KVStateMachine,
)
from repro.errors import ProtocolError


def test_put_and_get():
    machine = KVStateMachine()
    assert machine.apply(KVCommand(OP_PUT, "a", "1")).ok
    result = machine.apply(KVCommand(OP_GET, "a"))
    assert result.ok and result.value == "1"
    assert machine.get("a") == "1"


def test_get_missing_key():
    machine = KVStateMachine()
    result = machine.apply(KVCommand(OP_GET, "nope"))
    assert not result.ok and result.value is None


def test_delete():
    machine = KVStateMachine()
    machine.apply(KVCommand(OP_PUT, "a", "1"))
    assert machine.apply(KVCommand(OP_DELETE, "a")).ok
    assert not machine.apply(KVCommand(OP_DELETE, "a")).ok
    assert len(machine) == 0


def test_increment():
    machine = KVStateMachine()
    assert machine.apply(KVCommand(OP_INCREMENT, "c")).value == "1"
    assert machine.apply(KVCommand(OP_INCREMENT, "c")).value == "2"
    machine.apply(KVCommand(OP_PUT, "c", "10"))
    assert machine.apply(KVCommand(OP_INCREMENT, "c")).value == "11"


def test_invalid_commands_rejected():
    with pytest.raises(ProtocolError):
        KVCommand("swap", "a")
    with pytest.raises(ProtocolError):
        KVCommand(OP_PUT, "a")  # missing value


def test_digest_reflects_state_and_history():
    m1, m2 = KVStateMachine(), KVStateMachine()
    for m in (m1, m2):
        m.apply(KVCommand(OP_PUT, "a", "1"))
    assert m1.digest() == m2.digest()
    m1.apply(KVCommand(OP_PUT, "b", "2"))
    assert m1.digest() != m2.digest()


def test_digest_depends_on_applied_count():
    """Two stores with equal contents but different histories differ."""
    m1, m2 = KVStateMachine(), KVStateMachine()
    m1.apply(KVCommand(OP_PUT, "a", "1"))
    m2.apply(KVCommand(OP_PUT, "a", "0"))
    m2.apply(KVCommand(OP_PUT, "a", "1"))
    assert m1.get("a") == m2.get("a")
    assert m1.digest() != m2.digest()


def test_command_encoding_stable_and_distinct():
    c1 = KVCommand(OP_PUT, "a", "1")
    c2 = KVCommand(OP_PUT, "a", "2")
    assert c1.encode() == KVCommand(OP_PUT, "a", "1").encode()
    assert c1.encode() != c2.encode()
    assert 0 <= c1.encode() < 2**63


def test_payload_size_counts_fields():
    assert KVCommand(OP_PUT, "key", "value").payload_size() == 3 + 3 + 5
    assert KVCommand(OP_GET, "key").payload_size() == 3 + 3
