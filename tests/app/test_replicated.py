"""State machine replication over the consensus protocols."""

import pytest

from repro.app.kvstore import OP_INCREMENT, OP_PUT, KVCommand
from repro.app.replicated import attach_state_machines
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def replicated_run(protocol, commands, views=6):
    system = ConsensusSystem(small_config(protocol, block_size=4))
    app = attach_state_machines(system)
    for command in commands:
        app.submit_everywhere(command)
    system.run_until_views(views, max_time_ms=120_000)
    return system, app


COMMANDS = [
    KVCommand(OP_PUT, "alpha", "1", seq=0),
    KVCommand(OP_PUT, "beta", "2", seq=1),
    KVCommand(OP_INCREMENT, "counter", seq=2),
    KVCommand(OP_INCREMENT, "counter", seq=3),
    KVCommand(OP_PUT, "alpha", "3", seq=4),
]


@pytest.mark.parametrize("protocol", ["damysus", "hotstuff", "chained-damysus"])
def test_replicas_converge_on_identical_state(protocol):
    system, app = replicated_run(protocol, COMMANDS)
    digest = app.verify_convergence()
    assert digest  # no divergence raised
    machine, results = app.replay(system.replicas[0])
    assert machine.get("beta") == "2"
    assert machine.get("alpha") == "3"
    assert machine.get("counter") == "2"
    assert len(results) == len(COMMANDS)


def test_commands_executed_in_log_order():
    system, app = replicated_run("damysus", COMMANDS)
    _, results = app.replay(system.replicas[0])
    ops = [(r.command.op, r.command.key) for r in results]
    assert ops == [(c.op, c.key) for c in COMMANDS]


def test_duplicate_submissions_applied_once():
    system = ConsensusSystem(small_config("damysus", block_size=4))
    app = attach_state_machines(system)
    command = KVCommand(OP_INCREMENT, "x")
    app.submit_everywhere(command)  # lands in 3 mempools -> proposed 3x
    system.run_until_views(6, max_time_ms=120_000)
    machine, results = app.replay(system.replicas[0])
    assert machine.get("x") == "1"  # applied exactly once
    assert len(results) == 1


def test_single_replica_submission_still_commits():
    system = ConsensusSystem(small_config("damysus", block_size=4))
    app = attach_state_machines(system)
    app.submit(KVCommand(OP_PUT, "solo", "yes"), replica=1)
    system.run_until_views(8, max_time_ms=120_000)
    machine, _ = app.replay(system.replicas[2])
    assert machine.get("solo") == "yes"
    app.verify_convergence()


def test_convergence_under_byzantine_leader():
    from repro.adversary.equivocation import EquivocatingDamysusLeader

    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250, block_size=4),
        replica_overrides={1: EquivocatingDamysusLeader},
    )
    app = attach_state_machines(system)
    for command in COMMANDS:
        app.submit_everywhere(command)
    system.run_until_views(6, max_time_ms=300_000)
    app.verify_convergence()
