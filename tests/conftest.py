"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.core.block import genesis_block
from repro.protocols.system import ConsensusSystem


@pytest.fixture
def scheme():
    """A fresh fast signature scheme."""
    return HmacScheme(secret=b"test-suite")


@pytest.fixture
def directory(scheme):
    """A key directory with 8 replicas and their TEEs registered."""
    directory = KeyDirectory(scheme)
    for pid in range(8):
        directory.register_replica(pid)
        directory.register_tee(pid)
    return directory


@pytest.fixture
def genesis():
    return genesis_block()


def small_config(protocol: str, f: int = 1, **overrides) -> SystemConfig:
    """A fast configuration for logic-level protocol tests."""
    params = dict(
        protocol=protocol,
        f=f,
        payload_bytes=0,
        block_size=5,
        seed=42,
        timeout_ms=500.0,
        costs=CostModel.zero(),
    )
    params.update(overrides)
    return SystemConfig(**params)


def run_protocol(protocol: str, views: int = 5, f: int = 1, **overrides):
    """Build, run and return (system, result) for quick assertions."""
    system = ConsensusSystem(small_config(protocol, f=f, **overrides))
    result = system.run_until_views(views, max_time_ms=120_000)
    return system, result
