"""Round-trip tests for the wire codec."""

import pytest

from repro.crypto.scheme import Signature
from repro.core.block import create_chain, create_leaf, genesis_block
from repro.core.certificate import Accumulator, QuorumCert, genesis_qc
from repro.core.codec import CodecError, Decoder, Encoder, decode_message, encode_message
from repro.core.commitment import Commitment
from repro.core.mempool import AdmissionVerdict, Transaction
from repro.core.messages import (
    BlockProposal,
    BlockRequest,
    BlockResponse,
    ChainedProposal,
    ClientReply,
    ClientRequest,
    CommitmentMsg,
    NewViewAMsg,
    NewViewMsg,
    ProposalAMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase
from repro.protocols.chained_damysus import ChainedVote
from repro.protocols.fast_hotstuff import FastProposal
from repro.protocols.sync import SyncBlocks, SyncCheckpoint, SyncRequest
from repro.core.codec import decode_checkpoint, encode_checkpoint
from repro.tee.checkpoint import Checkpoint


def sig(signer=3):
    return Signature(signer, b"\xab" * 32, "hmac")


def tx(i=1, payload=16):
    return Transaction(client_id=2, tx_id=i, payload_bytes=payload, submitted_at=1.5)


def qc(view=4):
    return QuorumCert(view, b"\x01" * 32, Phase.PREPARE, (sig(0), sig(1), sig(2)))


def acc(finalized=True):
    if finalized:
        return Accumulator(5, 3, b"\x02" * 32, sig(9), count=3)
    return Accumulator(5, 3, b"\x02" * 32, sig(9), ids=(1000001, 1000002))


def commitment(h=b"\x03" * 32):
    return Commitment(h, 6, b"\x04" * 32, 5, Phase.PREPARE, (sig(7),))


def checkpoint():
    decide = Commitment(
        b"\x03" * 32, 44, b"\x04" * 32, 43, Phase.PRECOMMIT, (sig(7), sig(8))
    )
    return Checkpoint(
        replica=1,
        counter=3,
        height=40,
        view=44,
        block_hash=b"\x03" * 32,
        state_root=b"\x0a" * 32,
        qc=decide,
        signature=sig(1_000_001),
    )


def block(justify=None):
    g = genesis_block()
    if justify is None:
        return create_leaf(g.hash, 2, (tx(1), tx(2)), created_at=3.25)
    return create_chain(justify, 2, (tx(1),), created_at=3.25)


ALL_MESSAGES = [
    NewViewMsg(4, qc()),
    NewViewMsg(0, genesis_qc(genesis_block().hash)),
    NewViewAMsg(4, qc(), sig()),
    ProposalMsg(2, block(), qc()),
    ProposalAMsg(2, block(), acc(), sig()),
    VoteMsg(3, Phase.PRECOMMIT, b"\x05" * 32, sig()),
    QCMsg(4, Phase.COMMIT, qc()),
    CommitmentMsg(commitment(), "damysus-prep-vote"),
    CommitmentMsg(Commitment(None, 2, b"\x06" * 32, 1, Phase.NEW_VIEW, (sig(),)), "damysus-new-view"),
    BlockProposal(2, block(), acc(), sig()),
    BlockProposal(2, block(), None, sig(), justify_commitment=commitment()),
    ChainedProposal(2, block(justify=qc(1)), sig()),
    ChainedProposal(2, block(justify=acc()), sig()),
    ChainedProposal(2, block(justify=commitment()), sig()),
    ChainedVote(3, commitment(), Commitment(None, 3, b"\x07" * 32, 2, Phase.NEW_VIEW, (sig(),))),
    ChainedVote(3, None, Commitment(None, 3, b"\x07" * 32, 2, Phase.NEW_VIEW, (sig(),))),
    FastProposal(2, block(), qc(1), proof=None),
    FastProposal(2, block(), qc(1), proof=(NewViewAMsg(2, qc(1), sig(0)), NewViewAMsg(2, qc(1), sig(1)))),
    BlockRequest(b"\x08" * 32),
    BlockResponse(block()),
    ClientRequest(2, tx()),
    ClientRequest(2, Transaction(2, 7, 16, submitted_at=1.5, fee=42)),
    ClientReply(0, 2, 9, 12.5),
    ClientReply(0, 2, 9, 12.5, AdmissionVerdict.POOL_FULL),
    ClientReply(1, 3, 10, 0.5, AdmissionVerdict.RATE_LIMITED),
    SyncRequest(40, 44),
    SyncCheckpoint(checkpoint()),
    SyncBlocks(40, (block(), block()), done=False),
    SyncBlocks(0, (), done=True),
    SyncBlocks(40, (block(),), done=True, tip_qc=commitment()),
]


def test_checkpoint_standalone_roundtrip():
    ckpt = checkpoint()
    assert decode_checkpoint(encode_checkpoint(ckpt)) == ckpt


def test_checkpoint_standalone_truncation_rejected():
    data = encode_checkpoint(checkpoint())
    with pytest.raises(CodecError):
        decode_checkpoint(data[:-2])


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_roundtrip(msg):
    data = encode_message(msg)
    decoded = decode_message(data)
    assert decoded == msg


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_declared_wire_size_tracks_encoding(msg):
    """The accounting used by the benchmarks must be honest.

    The codec carries a few extra framing bytes per variable field, so
    declared and encoded sizes differ, but never wildly: within 35% or
    60 bytes, whichever is larger.
    """
    declared = msg.wire_size()
    encoded = len(encode_message(msg))
    assert abs(encoded - declared) <= max(60, declared * 0.35), (declared, encoded)


def test_unknown_admission_verdict_rejected():
    data = bytearray(encode_message(ClientReply(0, 2, 9, 12.5)))
    data[-1] = 0xFF  # the verdict tag is the reply's final byte
    with pytest.raises(CodecError, match="admission verdict"):
        decode_message(bytes(data))


def test_transaction_fee_survives_roundtrip():
    msg = ClientRequest(2, Transaction(2, 7, 16, submitted_at=1.5, fee=42))
    decoded = decode_message(encode_message(msg))
    assert decoded.tx.fee == 42


def test_block_hash_survives_roundtrip():
    msg = ProposalMsg(2, block(), qc())
    decoded = decode_message(encode_message(msg))
    assert decoded.block.hash == msg.block.hash


def test_chained_justify_kinds_roundtrip():
    for justify in (qc(1), acc(), commitment()):
        b = block(justify=justify)
        decoded = decode_message(encode_message(ChainedProposal(2, b, sig())))
        assert decoded.block.justify == justify
        assert decoded.block.hash == b.hash


def test_truncated_message_rejected():
    data = encode_message(ALL_MESSAGES[0])
    with pytest.raises(CodecError):
        decode_message(data[:-3])


def test_trailing_bytes_rejected():
    data = encode_message(ALL_MESSAGES[0])
    with pytest.raises(CodecError):
        decode_message(data + b"\x00")


def test_unknown_tag_rejected():
    with pytest.raises(CodecError):
        decode_message(b"\xff\x00\x00")


def test_unknown_type_rejected():
    with pytest.raises(CodecError):
        encode_message(object())


def test_encoder_decoder_primitives():
    enc = Encoder()
    enc.u8(7).u32(1234).i64(-5).f64(2.5).var_bytes(b"xy").string("hi")
    enc.opt(None, enc.i64).opt(42, enc.i64)
    dec = Decoder(enc.bytes())
    assert dec.u8() == 7
    assert dec.u32() == 1234
    assert dec.i64() == -5
    assert dec.f64() == 2.5
    assert dec.var_bytes() == b"xy"
    assert dec.string() == "hi"
    assert dec.opt(dec.i64) is None
    assert dec.opt(dec.i64) == 42
    dec.expect_done()


def test_bad_hash_length_rejected():
    enc = Encoder()
    with pytest.raises(CodecError):
        enc.hash32(b"short")


def test_transaction_payload_bytes_materialized():
    """Encoded size grows with the declared payload size."""
    small = encode_message(ClientRequest(0, tx(payload=0)))
    large = encode_message(ClientRequest(0, tx(payload=256)))
    assert len(large) - len(small) == 256


def test_full_block_encoding_size_matches_paper_scale():
    """A 400 x 256B block encodes near the paper's 115.6 KiB figure."""
    g = genesis_block()
    big = create_leaf(g.hash, 1, tuple(tx(i, payload=256) for i in range(400)))
    encoded = encode_message(BlockResponse(big))
    assert abs(len(encoded) - big.wire_size()) / big.wire_size() < 0.12
