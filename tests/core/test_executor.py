"""Tests for the execution ledger and the global safety oracle."""

import pytest

from repro.errors import ProtocolError, SafetyViolation
from repro.core.block import create_leaf
from repro.core.chain import BlockStore
from repro.core.executor import Ledger, SafetyOracle
from repro.core.mempool import Transaction
from repro.sim.monitor import Monitor


def tx(i):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


def build_chain(store, length, tag=0, parent=None):
    parent = parent or store.genesis.hash
    blocks = []
    for i in range(length):
        block = create_leaf(parent, i + 1, (tx(tag * 100 + i),), created_at=float(i))
        store.add(block)
        blocks.append(block)
        parent = block.hash
    return blocks


def test_execute_in_order():
    store = BlockStore()
    ledger = Ledger(0, store)
    blocks = build_chain(store, 3)
    for b in blocks:
        newly = ledger.execute(b, now=10.0)
        assert [x.hash for x in newly] == [b.hash]
    assert ledger.height() == 3
    assert ledger.last_executed_hash == blocks[-1].hash


def test_execute_catches_up_ancestors():
    """Executing a descendant executes skipped ancestors first (Fig 5a)."""
    store = BlockStore()
    ledger = Ledger(0, store)
    blocks = build_chain(store, 4)
    newly = ledger.execute(blocks[3], now=5.0)
    assert [b.hash for b in newly] == [b.hash for b in blocks]


def test_execute_idempotent():
    store = BlockStore()
    ledger = Ledger(0, store)
    [b] = build_chain(store, 1)
    assert len(ledger.execute(b, 1.0)) == 1
    assert ledger.execute(b, 2.0) == []
    assert ledger.height() == 1


def test_execute_rejects_fork():
    store = BlockStore()
    ledger = Ledger(0, store)
    main = build_chain(store, 2, tag=1)
    fork = build_chain(store, 2, tag=2)
    ledger.execute(main[1], 1.0)
    with pytest.raises(ProtocolError):
        ledger.execute(fork[1], 2.0)


def test_ledger_reports_to_monitor():
    store = BlockStore()
    monitor = Monitor()
    ledger = Ledger(3, store, monitor=monitor)
    [b] = build_chain(store, 1)
    ledger.execute(b, now=42.0, view=9)
    [rec] = monitor.executions
    assert rec.replica == 3
    assert rec.view == b.view  # recorded under the block's own view
    assert rec.executed_at == 42.0
    assert rec.block_hash == b.hash


def test_oracle_accepts_agreement():
    oracle = SafetyOracle()
    for replica in range(3):
        oracle.record(replica, b"a")
        oracle.record(replica, b"b")
    assert oracle.safe
    assert oracle.canonical_chain() == [b"a", b"b"]


def test_oracle_accepts_prefixes():
    oracle = SafetyOracle()
    oracle.record(0, b"a")
    oracle.record(0, b"b")
    oracle.record(1, b"a")  # replica 1 is simply behind
    assert oracle.safe


def test_oracle_detects_divergence_strict():
    oracle = SafetyOracle(strict=True)
    oracle.record(0, b"a")
    with pytest.raises(SafetyViolation):
        oracle.record(1, b"x")


def test_oracle_records_divergence_non_strict():
    oracle = SafetyOracle(strict=False)
    oracle.record(0, b"a")
    oracle.record(1, b"x")
    assert not oracle.safe
    [violation] = oracle.violations
    assert violation.index == 0
    assert violation.replica == 1
    assert "executed" in violation.describe()


def test_oracle_detects_later_divergence():
    oracle = SafetyOracle(strict=False)
    oracle.record(0, b"a")
    oracle.record(0, b"b")
    oracle.record(1, b"a")
    oracle.record(1, b"c")  # diverges at index 1
    assert not oracle.safe
    assert oracle.violations[0].index == 1


def test_oracle_buffers_ahead_records_and_splices_them():
    """A checkpointed replica runs ahead of the canonical frontier; its
    executions are held and spliced in once the frontier catches up."""
    oracle = SafetyOracle(strict=True)
    oracle.install_checkpoint(1, 2, b"b")  # replica 1 fast-forwards past 2
    oracle.record(1, b"c")  # index 2, beyond the (empty) canonical chain
    assert oracle.canonical_chain() == []
    oracle.record(0, b"a")  # frontier advances; buffered records splice in
    assert oracle.canonical_chain() == [b"a", b"b", b"c"]
    oracle.record(0, b"b")  # the slow replica agrees with the spliced run
    oracle.record(0, b"c")
    assert oracle.safe


def test_oracle_detects_divergence_beyond_frontier():
    """Two checkpointed replicas disagreeing above the frontier is caught
    immediately, not silently dropped (strict mode stays live)."""
    oracle = SafetyOracle(strict=True)
    oracle.install_checkpoint(1, 2, b"b")
    oracle.record(1, b"c")  # holds index 2 = c
    with pytest.raises(SafetyViolation):
        oracle.install_checkpoint(2, 3, b"x")  # claims index 2 = x


def test_oracle_flags_late_replica_against_spliced_records():
    oracle = SafetyOracle(strict=False)
    oracle.install_checkpoint(1, 1, b"b")  # holds index 0 = b
    oracle.record(0, b"a")  # a slow replica disagrees at the frontier
    assert not oracle.safe
    [violation] = oracle.violations
    assert violation.index == 0
    assert violation.replica == 0
    # The first-observed (checkpointed) claim became canonical.
    assert oracle.canonical_chain() == [b"b"]


def test_ledger_reports_to_oracle():
    store = BlockStore()
    oracle = SafetyOracle()
    ledger_a = Ledger(0, store, oracle=oracle)
    ledger_b = Ledger(1, store, oracle=oracle)
    blocks = build_chain(store, 2)
    ledger_a.execute(blocks[1], 1.0)
    ledger_b.execute(blocks[1], 1.0)
    assert oracle.safe
    assert len(oracle.sequences) == 2
