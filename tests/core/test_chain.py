"""Tests for the block store and ancestry relations (Section 5)."""

import pytest

from repro.errors import ProtocolError
from repro.core.block import create_leaf
from repro.core.chain import BlockStore
from repro.core.mempool import Transaction


def tx(i):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


@pytest.fixture
def store():
    return BlockStore()


def chain_of(store, length, start_parent=None, tag=0):
    """Build and insert a linear chain; returns the block list."""
    parent = start_parent if start_parent is not None else store.genesis.hash
    blocks = []
    for i in range(length):
        block = create_leaf(parent, i + 1, (tx(tag * 1000 + i),))
        store.add(block)
        blocks.append(block)
        parent = block.hash
    return blocks


def test_genesis_present(store):
    assert store.genesis.hash in store
    assert len(store) == 1


def test_add_and_get(store):
    [b] = chain_of(store, 1)
    assert store.get(b.hash) is b
    assert store.get(b"\x00" * 32) is None


def test_add_idempotent(store):
    [b] = chain_of(store, 1)
    store.add(b)
    assert len(store) == 2


def test_require_raises_on_unknown(store):
    with pytest.raises(ProtocolError):
        store.require(b"\x11" * 32)


def test_is_ancestor_reflexive(store):
    [b] = chain_of(store, 1)
    assert store.is_ancestor(b.hash, b.hash)
    assert not store.is_strict_ancestor(b.hash, b.hash)


def test_ancestry_along_chain(store):
    blocks = chain_of(store, 5)
    assert store.is_ancestor(store.genesis.hash, blocks[-1].hash)
    assert store.is_ancestor(blocks[0].hash, blocks[4].hash)
    assert not store.is_ancestor(blocks[4].hash, blocks[0].hash)
    assert store.is_strict_ancestor(blocks[1].hash, blocks[3].hash)


def test_conflicts_on_forks(store):
    main = chain_of(store, 3, tag=1)
    fork = chain_of(store, 2, start_parent=main[0].hash, tag=2)
    assert store.conflicts(main[2].hash, fork[1].hash)
    assert not store.conflicts(main[0].hash, main[2].hash)
    assert not store.conflicts(main[1].hash, main[1].hash)


def test_path_between(store):
    blocks = chain_of(store, 4)
    path = store.path_between(blocks[0].hash, blocks[3].hash)
    assert [b.hash for b in path] == [b.hash for b in blocks[1:]]


def test_path_between_adjacent(store):
    blocks = chain_of(store, 2)
    path = store.path_between(blocks[0].hash, blocks[1].hash)
    assert len(path) == 1


def test_path_between_self_is_empty(store):
    blocks = chain_of(store, 2)
    assert store.path_between(blocks[1].hash, blocks[1].hash) == []


def test_path_between_rejects_non_descendant(store):
    main = chain_of(store, 2, tag=1)
    fork = chain_of(store, 2, tag=2)
    with pytest.raises(ProtocolError):
        store.path_between(main[1].hash, fork[1].hash)


def test_path_between_rejects_missing_blocks(store):
    # A child whose parent was never inserted.
    orphan_parent = create_leaf(store.genesis.hash, 1, (tx(1),))
    orphan = create_leaf(orphan_parent.hash, 2, (tx(2),))
    store.add(orphan)
    with pytest.raises(ProtocolError):
        store.path_between(store.genesis.hash, orphan.hash)


def test_blocks_at_view_tracks_equivocation(store):
    b1 = create_leaf(store.genesis.hash, 1, (tx(1),))
    b2 = create_leaf(store.genesis.hash, 1, (tx(2),))
    store.add(b1)
    store.add(b2)
    assert len(store.blocks_at_view(1)) == 2
    assert store.blocks_at_view(9) == []


def test_ancestry_stops_at_unknown_parent(store):
    detached = create_leaf(b"\x42" * 32, 3, (tx(1),))
    store.add(detached)
    assert not store.is_ancestor(store.genesis.hash, detached.hash)
