"""Tests for phases and the step counter arithmetic (Sections 6.2, 7.1)."""

import pytest

from repro.errors import ConfigError
from repro.core.phases import Phase, Step, StepRule, initial_step


def test_basic_cycle():
    """Fig 2: (v,nv)++ = (v,prep); (v,prep)++ = (v,pcom); (v,pcom)++ = (v+1,nv)."""
    s = Step(3, Phase.NEW_VIEW)
    s = s.increment(StepRule.BASIC)
    assert s == Step(3, Phase.PREPARE)
    s = s.increment(StepRule.BASIC)
    assert s == Step(3, Phase.PRECOMMIT)
    s = s.increment(StepRule.BASIC)
    assert s == Step(4, Phase.NEW_VIEW)


def test_chained_cycle():
    """Fig 5: (v,prep)++ = (v,nv); (v,nv)++ = (v+1,prep)."""
    s = Step(3, Phase.PREPARE)
    s = s.increment(StepRule.CHAINED)
    assert s == Step(3, Phase.NEW_VIEW)
    s = s.increment(StepRule.CHAINED)
    assert s == Step(4, Phase.PREPARE)


def test_three_phase_cycle():
    """Damysus-C adds a commit step before wrapping to the next view."""
    s = Step(0, Phase.NEW_VIEW)
    phases = []
    for _ in range(5):
        phases.append((s.view, s.phase))
        s = s.increment(StepRule.THREE_PHASE)
    assert phases == [
        (0, Phase.NEW_VIEW),
        (0, Phase.PREPARE),
        (0, Phase.PRECOMMIT),
        (0, Phase.COMMIT),
        (1, Phase.NEW_VIEW),
    ]


def test_initial_step():
    assert initial_step(StepRule.BASIC) == Step(0, Phase.NEW_VIEW)
    assert initial_step(StepRule.CHAINED) == Step(0, Phase.NEW_VIEW)


def test_chained_initial_increment_lands_on_view_1():
    """Section 7.1: 'nodes now start at view 1'."""
    s = initial_step(StepRule.CHAINED).increment(StepRule.CHAINED)
    assert s == Step(1, Phase.PREPARE)


def test_index_strictly_increases_along_cycles():
    for rule in StepRule:
        s = initial_step(rule)
        indices = []
        for _ in range(10):
            indices.append(s.index(rule))
            s = s.increment(rule)
        assert indices == sorted(set(indices))


def test_index_rejects_foreign_phase():
    with pytest.raises(ConfigError):
        Step(0, Phase.COMMIT).index(StepRule.BASIC)
    with pytest.raises(ConfigError):
        Step(0, Phase.PRECOMMIT).increment(StepRule.CHAINED)


def test_steps_are_value_objects():
    assert Step(1, Phase.PREPARE) == Step(1, Phase.PREPARE)
    assert Step(1, Phase.PREPARE) != Step(2, Phase.PREPARE)
    assert hash(Step(1, Phase.PREPARE)) == hash(Step(1, Phase.PREPARE))


def test_phase_values_match_paper_tags():
    assert Phase.NEW_VIEW.value == "nv_p"
    assert Phase.PREPARE.value == "prep_p"
    assert Phase.PRECOMMIT.value == "pcom_p"
