"""Codec robustness: hostile bytes must fail with CodecError, never leak
struct.error / IndexError / UnicodeDecodeError to the runtime.

The asyncio runtime feeds raw network frames straight into
``decode_message``; a Byzantine peer controls every byte.  These tests
exhaustively truncate, extend and mutate the encoding of every message
type in the wire catalog.
"""

import random
import struct

import pytest

from repro.core.codec import (
    CodecError,
    Encoder,
    MessageSerializer,
    Serializer,
    decode_message,
    encode_message,
    encode_message_framed,
)
from tests.core.test_codec import ALL_MESSAGES

#: Exceptions a hostile frame must never surface.
FORBIDDEN = (struct.error, IndexError, UnicodeDecodeError, KeyError, ValueError)


def _decode_hostile(data):
    """Decode attacker bytes; anything but CodecError or success fails."""
    try:
        decode_message(data)
    except CodecError:
        pass


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_every_strict_prefix_rejected(msg):
    data = encode_message(msg)
    for cut in range(len(data)):
        with pytest.raises(CodecError):
            decode_message(data[:cut])


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_trailing_garbage_rejected(msg):
    data = encode_message(msg)
    for tail in (b"\x00", b"\xff" * 7):
        with pytest.raises(CodecError):
            decode_message(data + tail)


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_single_byte_mutations_never_crash(msg):
    """Flip one byte at a time: clean decode or CodecError, nothing else."""
    data = bytearray(encode_message(msg))
    rng = random.Random(0xC0DEC)
    positions = range(len(data)) if len(data) <= 96 else sorted(
        rng.sample(range(len(data)), 96)
    )
    for pos in positions:
        original = data[pos]
        for flip in (original ^ 0x01, original ^ 0x80, 0xFF):
            data[pos] = flip
            _decode_hostile(bytes(data))
        data[pos] = original


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_random_splices_never_crash(msg):
    """Seeded multi-byte corruption (overwrites, swaps, length bombs)."""
    data = encode_message(msg)
    rng = random.Random(len(data))
    for _ in range(40):
        corrupt = bytearray(data)
        for _ in range(rng.randint(1, 4)):
            start = rng.randrange(len(corrupt))
            span = min(rng.randint(1, 8), len(corrupt) - start)
            corrupt[start : start + span] = rng.randbytes(span)
        _decode_hostile(bytes(corrupt))


def test_pure_garbage_never_crashes():
    rng = random.Random(1337)
    for size in (0, 1, 2, 3, 5, 16, 64, 301):
        for _ in range(25):
            _decode_hostile(rng.randbytes(size))


def test_huge_length_prefix_rejected():
    # A var_bytes length field claiming 4 GiB must not allocate or crash.
    vote = encode_message(ALL_MESSAGES[5])
    bomb = bytearray(vote)
    bomb[-40:-36] = b"\xff\xff\xff\xff"  # inside the signature var_bytes length
    _decode_hostile(bytes(bomb))


@pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
def test_framed_roundtrip(msg):
    framed = encode_message_framed(msg)
    (length,) = struct.unpack_from("<I", framed, 0)
    assert length == len(framed) - 4
    assert decode_message(framed[4:]) == msg


def test_message_serializer_satisfies_protocol():
    serializer = MessageSerializer()
    assert isinstance(serializer, Serializer)
    msg = ALL_MESSAGES[0]
    assert serializer.deserialize(serializer.serialize(msg)) == msg


def test_encoder_range_errors_are_codec_errors():
    enc = Encoder()
    with pytest.raises(CodecError):
        enc.u8(256)
    with pytest.raises(CodecError):
        enc.u32(1 << 32)
    with pytest.raises(CodecError):
        enc.i64(1 << 63)
    with pytest.raises(CodecError):
        enc.patch_u32(0, 1)  # nothing written yet
