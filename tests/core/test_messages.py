"""Tests for wire messages and byte accounting."""

from repro.crypto.scheme import Signature
from repro.core.block import create_leaf, genesis_block
from repro.core.certificate import QuorumCert, genesis_qc
from repro.core.commitment import Commitment
from repro.core.mempool import Transaction
from repro.core.messages import (
    BlockProposal,
    ChainedProposal,
    ClientReply,
    ClientRequest,
    CommitmentMsg,
    NewViewMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase


def sig(signer=0):
    return Signature(signer, b"\x00" * 32, "hmac")


def block():
    g = genesis_block()
    return create_leaf(g.hash, 1, (Transaction(0, 1, 64),))


def test_all_messages_have_types_and_sizes():
    g = genesis_block()
    qc = genesis_qc(g.hash)
    phi = Commitment(None, 1, g.hash, 0, Phase.NEW_VIEW, (sig(),))
    messages = [
        NewViewMsg(1, qc),
        ProposalMsg(1, block(), qc),
        VoteMsg(1, Phase.PREPARE, g.hash, sig()),
        QCMsg(1, Phase.PREPARE, qc),
        CommitmentMsg(phi, "damysus-new-view"),
        BlockProposal(1, block(), None, sig(), justify_commitment=phi),
        ChainedProposal(1, block(), sig()),
        ClientRequest(0, Transaction(0, 1, 10)),
        ClientReply(0, 0, 1, 5.0),
    ]
    for msg in messages:
        assert isinstance(msg.msg_type, str) and msg.msg_type
        assert msg.wire_size() > 0


def test_commitment_msg_type_is_kind():
    phi = Commitment(None, 4, None, None, Phase.NEW_VIEW, (sig(),))
    msg = CommitmentMsg(phi, "damysus-prep-vote")
    assert msg.msg_type == "damysus-prep-vote"
    assert msg.view == 4


def test_proposal_size_dominated_by_block():
    g = genesis_block()
    qc = genesis_qc(g.hash)
    big_block = create_leaf(
        g.hash, 1, tuple(Transaction(0, i, 256) for i in range(400))
    )
    msg = ProposalMsg(1, big_block, qc)
    assert msg.wire_size() > 400 * 296


def test_vote_is_small_and_constant():
    v1 = VoteMsg(1, Phase.PREPARE, b"\x01" * 32, sig())
    v2 = VoteMsg(9, Phase.COMMIT, b"\x02" * 32, sig())
    assert v1.wire_size() == v2.wire_size() < 200


def test_qc_message_grows_with_quorum():

    h = b"\x03" * 32
    small = QuorumCert(1, h, Phase.PREPARE, (sig(0), sig(1)))
    large = QuorumCert(1, h, Phase.PREPARE, tuple(sig(i) for i in range(5)))
    assert QCMsg(1, Phase.PREPARE, large).wire_size() > QCMsg(
        1, Phase.PREPARE, small
    ).wire_size()


def test_client_messages_have_no_view():
    assert ClientRequest(0, Transaction(0, 1, 0)).view is None
    assert ClientReply(0, 0, 1, 0.0).view is None


def test_block_proposal_counts_optional_fields():
    phi = Commitment(None, 1, b"\x01" * 32, 0, Phase.NEW_VIEW, (sig(),))
    without = BlockProposal(1, block(), None, sig())
    with_j = BlockProposal(1, block(), None, sig(), justify_commitment=phi)
    assert with_j.wire_size() - without.wire_size() == phi.wire_size()
