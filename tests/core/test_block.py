"""Tests for blocks and the extension relation."""

from repro.core.block import (
    BLOCK_HEADER_BYTES,
    create_chain,
    create_leaf,
    genesis_block,
)
from repro.core.certificate import genesis_qc
from repro.core.mempool import Transaction


def tx(i, payload=0):
    return Transaction(client_id=0, tx_id=i, payload_bytes=payload)


def test_genesis_is_stable():
    assert genesis_block().hash == genesis_block().hash
    assert genesis_block().is_genesis


def test_create_leaf_extends_parent():
    g = genesis_block()
    b = create_leaf(g.hash, 1, (tx(1),))
    assert b.extends(g.hash)
    assert b.parent == g.hash
    assert not b.extends(b.hash)


def test_hash_depends_on_contents():
    g = genesis_block()
    b1 = create_leaf(g.hash, 1, (tx(1),))
    b2 = create_leaf(g.hash, 1, (tx(2),))
    b3 = create_leaf(g.hash, 2, (tx(1),))
    assert len({b1.hash, b2.hash, b3.hash}) == 3


def test_equal_content_equal_hash():
    g = genesis_block()
    assert create_leaf(g.hash, 1, (tx(1),)).hash == create_leaf(g.hash, 1, (tx(1),)).hash


def test_wire_size_counts_transactions_and_metadata():
    g = genesis_block()
    b = create_leaf(g.hash, 1, tuple(tx(i, payload=256) for i in range(400)))
    assert b.wire_size() == BLOCK_HEADER_BYTES + 400 * (256 + 40)


def test_paper_block_sizes():
    """Section 8: 0B payloads -> 15.6KiB blocks; 256B -> 115.6KiB blocks."""
    g = genesis_block()
    b0 = create_leaf(g.hash, 1, tuple(tx(i, payload=0) for i in range(400)))
    b256 = create_leaf(g.hash, 1, tuple(tx(i, payload=256) for i in range(400)))
    assert b0.wire_size() - BLOCK_HEADER_BYTES == 400 * 40  # 15.6 KiB
    assert b256.wire_size() - BLOCK_HEADER_BYTES == 400 * 296  # 115.6 KiB


def test_create_chain_embeds_justification():
    g = genesis_block()
    qc = genesis_qc(g.hash)
    b = create_chain(qc, 1, (tx(1),))
    assert b.just is qc
    assert b.parent == qc.hash
    assert b.wire_size() > create_leaf(g.hash, 1, (tx(1),)).wire_size()


def test_justification_contributes_to_hash():
    g = genesis_block()
    qc = genesis_qc(g.hash)
    chained = create_chain(qc, 1, (tx(1),))
    plain = create_leaf(g.hash, 1, (tx(1),))
    assert chained.hash != plain.hash


def test_num_transactions():
    g = genesis_block()
    assert create_leaf(g.hash, 1, tuple(tx(i) for i in range(7))).num_transactions() == 7
    assert genesis_block().num_transactions() == 0
