"""Tests for commitments and C-combine / C-match (Section 6.2)."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.errors import ProtocolError
from repro.core.commitment import Commitment, c_combine, c_match
from repro.core.phases import Phase


@pytest.fixture
def scheme():
    s = HmacScheme(secret=b"commitments")
    for signer in range(10):
        s.keygen(signer)
    return s


def make(scheme, signer, h=b"\x01" * 32, v=3, hj=b"\x02" * 32, vj=2, ph=Phase.PREPARE):
    from repro.core.commitment import commitment_payload

    sig = scheme.sign(signer, commitment_payload(h, v, hj, vj, ph))
    return Commitment(h, v, hj, vj, ph, (sig,))


def test_accessors_match_paper_notation(scheme):
    phi = make(scheme, 0)
    assert phi.hprep == b"\x01" * 32
    assert phi.vprep == 3
    assert phi.hjust == b"\x02" * 32
    assert phi.vjust == 2
    assert phi.phase == Phase.PREPARE
    assert len(phi.sign) == 1


def test_verify_roundtrip(scheme):
    phi = make(scheme, 0)
    assert phi.verify(scheme)


def test_verify_rejects_field_tampering(scheme):
    phi = make(scheme, 0)
    from dataclasses import replace

    assert not replace(phi, v_prep=4).verify(scheme)
    assert not replace(phi, phase=Phase.PRECOMMIT).verify(scheme)
    assert not replace(phi, h_prep=None).verify(scheme)


def test_verify_rejects_empty_signatures():
    phi = Commitment(b"\x01" * 32, 1, None, None, Phase.PREPARE, ())
    assert not phi.verify(HmacScheme())


def test_c_combine_merges_signatures(scheme):
    phis = [make(scheme, s) for s in range(3)]
    combined = c_combine(phis)
    assert len(combined.sigs) == 3
    assert combined.verify(scheme)
    assert combined.h_prep == phis[0].h_prep


def test_c_combine_rejects_mismatched_fields(scheme):
    with pytest.raises(ProtocolError):
        c_combine([make(scheme, 0), make(scheme, 1, v=4)])
    with pytest.raises(ProtocolError):
        c_combine([make(scheme, 0), make(scheme, 1, ph=Phase.PRECOMMIT)])


def test_c_combine_rejects_duplicate_signer(scheme):
    with pytest.raises(ProtocolError):
        c_combine([make(scheme, 0), make(scheme, 0)])


def test_c_combine_rejects_empty():
    with pytest.raises(ProtocolError):
        c_combine([])


def test_c_match_happy_path(scheme):
    phis = [make(scheme, s) for s in range(3)]
    assert c_match(phis, 3, b"\x01" * 32, 3, Phase.PREPARE)


def test_c_match_ignores_justification_fields(scheme):
    """New-view commitments legitimately differ in (Hjust, Vjust)."""
    phis = [
        make(scheme, 0, h=None, ph=Phase.NEW_VIEW, hj=b"\x03" * 32, vj=1),
        make(scheme, 1, h=None, ph=Phase.NEW_VIEW, hj=b"\x04" * 32, vj=2),
    ]
    assert c_match(phis, 2, None, 3, Phase.NEW_VIEW)


def test_c_match_rejects_wrong_count(scheme):
    phis = [make(scheme, s) for s in range(3)]
    assert not c_match(phis, 2, b"\x01" * 32, 3, Phase.PREPARE)
    assert not c_match(phis, 4, b"\x01" * 32, 3, Phase.PREPARE)


def test_c_match_rejects_duplicate_signers(scheme):
    phis = [make(scheme, 0), make(scheme, 0)]
    assert not c_match(phis, 2, b"\x01" * 32, 3, Phase.PREPARE)


def test_c_match_rejects_field_mismatch(scheme):
    phis = [make(scheme, 0), make(scheme, 1, v=4)]
    assert not c_match(phis, 2, b"\x01" * 32, 3, Phase.PREPARE)
    phis2 = [make(scheme, 0), make(scheme, 1, ph=Phase.NEW_VIEW)]
    assert not c_match(phis2, 2, b"\x01" * 32, 3, Phase.PREPARE)


def test_c_match_rejects_multi_sig_entries(scheme):
    combined = c_combine([make(scheme, 0), make(scheme, 1)])
    assert not c_match([combined, make(scheme, 2)], 2, b"\x01" * 32, 3, Phase.PREPARE)


def test_chained_accessors(scheme):
    prep = make(scheme, 0, h=b"\x05" * 32, v=7, hj=None, vj=None, ph=Phase.PREPARE)
    assert prep.view == 7
    assert prep.hcomm == b"\x05" * 32
    assert prep.vcomm == 7
    nv = make(scheme, 1, h=None, v=7, hj=b"\x06" * 32, vj=5, ph=Phase.NEW_VIEW)
    assert nv.view == 7
    assert nv.hcomm == b"\x06" * 32
    assert nv.vcomm == 5


def test_certificate_vocabulary(scheme):
    prep = make(scheme, 0, h=b"\x05" * 32, v=7)
    assert prep.cview == 7
    assert prep.hash == b"\x05" * 32
    assert len(prep.digest()) == 32


def test_wire_size_grows_with_signatures(scheme):
    single = make(scheme, 0)
    combined = c_combine([make(scheme, s) for s in range(3)])
    assert combined.wire_size() == single.wire_size() + 2 * 64
