"""Tests for quorum certificates and accumulator certificates."""

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import Signature
from repro.core.certificate import Accumulator, QuorumCert, genesis_qc, vote_payload
from repro.core.phases import Phase


@pytest.fixture
def scheme():
    s = HmacScheme(secret=b"certs")
    for signer in range(10):
        s.keygen(signer)
    return s


def make_qc(scheme, signers, view=2, h=b"\x07" * 32, phase=Phase.PREPARE):
    payload = vote_payload(view, phase, h)
    sigs = tuple(scheme.sign(s, payload) for s in signers)
    return QuorumCert(view, h, phase, sigs)


def test_qc_verify_roundtrip(scheme):
    qc = make_qc(scheme, [0, 1, 2])
    assert qc.verify(scheme, quorum=3)


def test_qc_rejects_wrong_quorum_size(scheme):
    qc = make_qc(scheme, [0, 1, 2])
    assert not qc.verify(scheme, quorum=4)
    assert not qc.verify(scheme, quorum=2)


def test_qc_rejects_duplicate_signers(scheme):
    payload = vote_payload(2, Phase.PREPARE, b"\x07" * 32)
    sig = scheme.sign(0, payload)
    qc = QuorumCert(2, b"\x07" * 32, Phase.PREPARE, (sig, sig, scheme.sign(1, payload)))
    assert not qc.verify(scheme, quorum=3)


def test_qc_rejects_cross_phase_votes(scheme):
    """A prepare vote must not count toward a pre-commit certificate."""
    prepare_payload = vote_payload(2, Phase.PREPARE, b"\x07" * 32)
    sigs = tuple(scheme.sign(s, prepare_payload) for s in range(3))
    wrong = QuorumCert(2, b"\x07" * 32, Phase.PRECOMMIT, sigs)
    assert not wrong.verify(scheme, quorum=3)


def test_qc_certificate_vocabulary(scheme):
    qc = make_qc(scheme, [0, 1, 2], view=5)
    assert qc.cview == qc.view == 5
    assert qc.hash == b"\x07" * 32
    assert len(qc) == 3


def test_genesis_qc_valid_by_fiat(scheme):
    bottom = genesis_qc(b"\x09" * 32)
    assert bottom.verify(scheme, quorum=3)
    assert len(bottom) == 0
    assert bottom.view == 0


def test_qc_wire_size_scales_with_signers(scheme):
    small = make_qc(scheme, [0, 1])
    large = make_qc(scheme, [0, 1, 2, 3])
    assert large.wire_size() == small.wire_size() + 2 * 64


def test_qc_digest_distinguishes_contents(scheme):
    qc1 = make_qc(scheme, [0, 1, 2], view=2)
    qc2 = make_qc(scheme, [0, 1, 2], view=3)
    assert qc1.digest() != qc2.digest()


def make_acc(signer_sig, finalized=True, view=4, pview=2, h=b"\x08" * 32, n=3):
    if finalized:
        return Accumulator(view, pview, h, signer_sig, count=n)
    return Accumulator(view, pview, h, signer_sig, ids=(100, 101, 102))


def test_accumulator_vocabulary(scheme):
    sig = Signature(0, b"x", "hmac")
    acc = make_acc(sig)
    assert acc.cview == 4
    assert acc.view == 2
    assert acc.hash == b"\x08" * 32
    assert len(acc) == 3
    assert acc.finalized


def test_accumulator_working_form_length(scheme):
    sig = Signature(0, b"x", "hmac")
    acc = make_acc(sig, finalized=False)
    assert not acc.finalized
    assert len(acc) == 3


def test_accumulator_signed_payload_depends_on_form(scheme):
    sig = Signature(0, b"x", "hmac")
    assert make_acc(sig).signed_payload() != make_acc(sig, finalized=False).signed_payload()


def test_accumulator_verify(scheme):
    unsigned = Accumulator(4, 2, b"\x08" * 32, Signature(0, b"", "hmac"), count=3)
    sig = scheme.sign(0, unsigned.signed_payload())
    acc = Accumulator(4, 2, b"\x08" * 32, sig, count=3)
    assert acc.verify(scheme)
    bad = Accumulator(5, 2, b"\x08" * 32, sig, count=3)
    assert not bad.verify(scheme)


def test_accumulator_wire_size_forms(scheme):
    sig = Signature(0, b"x", "hmac")
    finalized = make_acc(sig)
    working = make_acc(sig, finalized=False)
    # The finalized form carries a 4-byte count instead of 3 x 4-byte ids.
    assert working.wire_size() - finalized.wire_size() == 8
