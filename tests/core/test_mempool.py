"""Tests for transactions and the mempool."""

from repro.core import mempool as mempool_mod
from repro.core.mempool import TX_METADATA_BYTES, Mempool, Transaction, payload_digest


def test_tx_wire_size_includes_metadata():
    assert Transaction(0, 1, payload_bytes=256).wire_size() == 256 + TX_METADATA_BYTES
    assert Transaction(0, 1, payload_bytes=0).wire_size() == 40  # paper Section 8


def test_payload_digest_depends_on_contents():
    txs1 = (Transaction(0, 1, 0), Transaction(0, 2, 0))
    txs2 = (Transaction(0, 1, 0), Transaction(0, 3, 0))
    assert payload_digest(txs1) != payload_digest(txs2)
    assert payload_digest(txs1) == payload_digest(txs1)


def test_payload_digest_cache_evicts_oldest_half():
    """The digest cache is bounded and sheds its *oldest* entries.

    Regression: an unbounded (or wholesale-cleared) cache either grows
    without limit under synthetic open-loop load or drops the hot recent
    tuples a live chain keeps re-hashing.
    """
    cache = mempool_mod._PAYLOAD_DIGEST_CACHE
    cache_max = mempool_mod._DIGEST_CACHE_MAX
    cache.clear()
    tuples = [(Transaction(0, i, 0),) for i in range(cache_max + 1)]
    for txs in tuples:
        payload_digest(txs)
    # The insertion that overflowed evicted the oldest half first.
    assert len(cache) == cache_max // 2 + 1
    assert tuples[0] not in cache
    assert tuples[cache_max // 2 - 1] not in cache
    assert tuples[cache_max // 2] in cache
    assert tuples[-1] in cache
    # Evicted tuples still digest correctly (and re-enter the cache).
    assert payload_digest(tuples[0]) == payload_digest((Transaction(0, 0, 0),))
    cache.clear()


def test_payload_digest_differs_by_fee():
    assert payload_digest((Transaction(0, 1, 0, fee=1),)) != payload_digest(
        (Transaction(0, 1, 0, fee=2),)
    )


def test_open_loop_blocks_are_full():
    pool = Mempool(payload_bytes=16, block_size=7, open_loop=True)
    block = pool.take_block(now=0.0)
    assert len(block) == 7
    assert all(tx.payload_bytes == 16 for tx in block)


def test_open_loop_synthetic_ids_unique():
    pool = Mempool(payload_bytes=0, block_size=5, open_loop=True)
    ids = [tx.tx_id for tx in pool.take_block(0.0) + pool.take_block(0.0)]
    assert len(set(ids)) == 10


def test_closed_loop_blocks_limited_to_queue():
    pool = Mempool(payload_bytes=0, block_size=5, open_loop=False)
    pool.add(Transaction(1, 1, 0))
    pool.add(Transaction(1, 2, 0))
    block = pool.take_block(0.0)
    assert len(block) == 2
    assert pool.pending() == 0
    assert pool.take_block(0.0) == ()


def test_closed_loop_respects_block_size():
    pool = Mempool(payload_bytes=0, block_size=3, open_loop=False)
    for i in range(10):
        pool.add(Transaction(1, i, 0))
    assert len(pool.take_block(0.0)) == 3
    assert pool.pending() == 7


def test_open_loop_prefers_queued_client_txs():
    pool = Mempool(payload_bytes=0, block_size=3, open_loop=True)
    pool.add(Transaction(7, 99, 0))
    block = pool.take_block(0.0)
    assert block[0].client_id == 7
    assert len(block) == 3
