"""Long-run state garbage collection: per-view state must stay bounded."""

import pytest

from repro.protocols.registry import PROTOCOL_ORDER
from tests.conftest import run_protocol

#: Upper bound on retained per-view keys after a long run; small and
#: independent of the number of views executed.
MAX_RETAINED_KEYS = 24


def collector_sizes(replica) -> list[int]:
    from repro.protocols.replica import QuorumCollector

    return [
        value.pending_keys()
        for value in vars(replica).values()
        if isinstance(value, QuorumCollector)
    ]


def view_set_sizes(replica) -> list[int]:
    sizes = []
    for name in ("_proposed", "_voted", "_decided", "_stored", "_locked"):
        value = getattr(replica, name, None)
        if isinstance(value, set):
            sizes.append(len(value))
    return sizes


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_collectors_stay_bounded_over_long_runs(protocol):
    system, result = run_protocol(protocol, views=30)
    assert result.committed_blocks >= 30
    for replica in system.replicas:
        for size in collector_sizes(replica):
            assert size <= MAX_RETAINED_KEYS
        for size in view_set_sizes(replica):
            assert size <= MAX_RETAINED_KEYS


@pytest.mark.parametrize("protocol", ["damysus", "chained-damysus"])
def test_gc_does_not_break_progress(protocol):
    """Pruning must never remove state a later step still needs."""
    _, short = run_protocol(protocol, views=5, seed=3)
    _, long = run_protocol(protocol, views=25, seed=3)
    assert short.safe and long.safe
    assert long.committed_blocks >= 25
