"""End-to-end tests: every protocol commits safely and consistently.

These run the full simulated stack (network, TEEs, pacemakers) at small
scale with a strict safety oracle, so any fork raises immediately.
"""

import pytest

from repro.analysis.complexity import expected_messages
from repro.protocols.registry import PROTOCOL_ORDER, get_spec
from tests.conftest import run_protocol

ALL = PROTOCOL_ORDER


@pytest.mark.parametrize("protocol", ALL)
def test_commits_blocks_safely(protocol):
    system, result = run_protocol(protocol, views=5)
    assert result.safe
    assert result.committed_blocks >= 5
    assert result.mean_latency_ms > 0


@pytest.mark.parametrize("protocol", ALL)
def test_replica_count_matches_spec(protocol):
    spec = get_spec(protocol)
    system, result = run_protocol(protocol, views=3, f=2)
    assert result.num_replicas == spec.num_replicas(2)
    assert system.quorum == spec.quorum(2)


@pytest.mark.parametrize("protocol", ALL)
def test_all_replicas_agree_on_executed_chain(protocol):
    system, result = run_protocol(protocol, views=5)
    sequences = [
        [b.hash for b in replica.ledger.executed] for replica in system.replicas
    ]
    longest = max(sequences, key=len)
    assert len(longest) >= 5
    for seq in sequences:
        assert seq == longest[: len(seq)]


@pytest.mark.parametrize("protocol", ALL)
def test_executed_blocks_form_parent_chain(protocol):
    system, _ = run_protocol(protocol, views=5)
    replica = system.replicas[0]
    chain = replica.ledger.executed
    prev = replica.store.genesis
    for block in chain:
        assert block.parent_hash == prev.hash
        prev = block


@pytest.mark.parametrize("protocol", ALL)
def test_steady_state_message_counts_match_table1(protocol):
    """Simulated per-block messages reproduce Table 1's closed forms."""
    f = 2
    system, result = run_protocol(protocol, views=8, f=f)
    counts = system.monitor.view_message_counts
    steady_views = [v for v in sorted(counts) if 2 <= v <= 6]
    assert steady_views, "no steady-state views observed"
    per_view = sum(counts[v] for v in steady_views) / len(steady_views)
    span = {"chained-hotstuff": 4, "chained-damysus": 3}.get(protocol, 1)
    assert per_view * span == pytest.approx(expected_messages(protocol, f), rel=0.05)


@pytest.mark.parametrize("protocol", ALL)
def test_deterministic_given_seed(protocol):
    _, r1 = run_protocol(protocol, views=4, seed=123)
    _, r2 = run_protocol(protocol, views=4, seed=123)
    assert r1 == r2


@pytest.mark.parametrize("protocol", ALL)
def test_different_seeds_vary_timing_not_safety(protocol):
    _, r1 = run_protocol(protocol, views=4, seed=1)
    _, r2 = run_protocol(protocol, views=4, seed=2)
    assert r1.safe and r2.safe
    assert r1.committed_blocks >= 4 and r2.committed_blocks >= 4


@pytest.mark.parametrize("protocol", ["hotstuff", "damysus"])
def test_transactions_flow_into_blocks(protocol):
    system, result = run_protocol(protocol, views=3)
    executed = system.replicas[0].ledger.executed
    assert all(block.num_transactions() == 5 for block in executed)


@pytest.mark.parametrize("protocol", ALL)
def test_throughput_and_latency_positive(protocol):
    _, result = run_protocol(protocol, views=4)
    assert result.throughput_kops > 0
    assert 0 < result.mean_latency_ms < result.duration_ms
