"""Tests for the Fast-HotStuff baseline (TEE-free, 2 phases, 3f+1)."""


from repro.protocols.fast_hotstuff import FastProposal
from repro.protocols.system import ConsensusSystem
from tests.conftest import run_protocol, small_config


def test_commits_blocks_safely():
    system, result = run_protocol("fast-hotstuff", views=6)
    assert result.safe
    assert result.committed_blocks >= 6


def test_happy_path_proposals_carry_no_proof():
    system, _ = run_protocol("fast-hotstuff", views=5)
    proposals = []
    # Re-run with a tap to observe proposals.
    system2 = ConsensusSystem(small_config("fast-hotstuff"))
    system2.network.add_tap(
        lambda s, d, p: proposals.append(p) if isinstance(p, FastProposal) else None
    )
    system2.run_until_views(5, max_time_ms=120_000)
    happy = [p for p in proposals if p.view >= 2]
    assert happy
    assert all(p.proof is None for p in happy)


def test_unhappy_path_ships_aggregate_proof():
    """After a silent leader, the next proposal carries 2f+1 reports."""
    proposals = []
    system = ConsensusSystem(small_config("fast-hotstuff", timeout_ms=250))
    system.network.add_tap(
        lambda s, d, p: proposals.append(p) if isinstance(p, FastProposal) else None
    )
    system.crash_replicas([2])  # leader of view 2 crashes -> view 2 times out
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    with_proof = [p for p in proposals if p.proof is not None]
    assert with_proof, "timeout recovery must use the aggregate proof"
    quorum = system.quorum
    assert all(len(p.proof) == quorum for p in with_proof)


def test_proof_proposals_are_larger():
    """The Section 2 trade-off: proofs inflate the proposal by O(n) QCs."""
    system = ConsensusSystem(small_config("fast-hotstuff", timeout_ms=250))
    sizes = {"proof": [], "plain": []}
    system.network.add_tap(
        lambda s, d, p: sizes["proof" if p.proof else "plain"].append(p.wire_size())
        if isinstance(p, FastProposal)
        else None
    )
    system.crash_replicas([2])
    system.run_until_views(4, max_time_ms=300_000)
    assert sizes["proof"] and sizes["plain"]
    assert min(sizes["proof"]) > max(sizes["plain"])


def test_two_phase_latency_beats_hotstuff():
    """Fewer phases: Fast-HotStuff commits faster than basic HotStuff."""
    _, fast = run_protocol("fast-hotstuff", views=5)
    _, slow = run_protocol("hotstuff", views=5)
    assert fast.mean_latency_ms < slow.mean_latency_ms


def test_progress_with_crashed_leader():
    system = ConsensusSystem(small_config("fast-hotstuff", f=1, timeout_ms=250))
    system.crash_replicas([1])
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4


def test_deterministic_given_seed():
    _, r1 = run_protocol("fast-hotstuff", views=4, seed=9)
    _, r2 = run_protocol("fast-hotstuff", views=4, seed=9)
    assert r1 == r2
