"""Tests for block synchronization (fetching bodies a leader withheld)."""

import pytest

from repro.core.block import create_leaf
from repro.core.mempool import Transaction
from repro.core.messages import BlockRequest, BlockResponse
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def tx(i):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


@pytest.fixture
def system():
    # Deliberately not started: replicas are wired to the network but run
    # no consensus, so tests can inject blocks without the live protocol
    # racing them.
    return ConsensusSystem(small_config("damysus"))


def test_block_request_answered_from_store(system):
    replica0, replica1 = system.replicas[0], system.replicas[1]
    block = create_leaf(replica0.store.genesis.hash, 99, (tx(1),))
    replica0.store.add(block)
    replies = []
    system.network.add_tap(
        lambda src, dst, p: replies.append(p) if isinstance(p, BlockResponse) else None
    )
    replica1.send(0, BlockRequest(block.hash))
    system.sim.run(until=system.sim.now + 50.0)
    assert any(r.block.hash == block.hash for r in replies)
    assert block.hash in replica1.store


def test_unknown_block_request_is_ignored(system):
    replica1 = system.replicas[1]
    replies = []
    system.network.add_tap(
        lambda src, dst, p: replies.append(p) if isinstance(p, BlockResponse) else None
    )
    replica1.send(0, BlockRequest(b"\x77" * 32))
    system.sim.run(until=system.sim.now + 50.0)
    assert replies == []


def test_missing_ancestor_parks_execution_and_fetches(system):
    """Executing a block with an unknown parent triggers a fetch."""
    replica0, replica1 = system.replicas[0], system.replicas[1]
    last = replica1.ledger.last_executed_hash
    hidden = create_leaf(last, 97, (tx(1),))
    child = create_leaf(hidden.hash, 98, (tx(2),))
    # Only replica 0 holds the hidden block; replica 1 sees just the child.
    replica0.store.add(hidden)
    replica1.store.add(child)
    height_before = replica1.ledger.height()
    replica1.execute_block(child, 98)
    assert replica1.ledger.height() == height_before  # parked
    system.sim.run(until=system.sim.now + 100.0)
    # The fetch completed and the parked execution went through.
    assert hidden.hash in replica1.store
    assert replica1.ledger.is_executed(child.hash)


def test_equivocation_starved_replicas_catch_up_via_sync():
    """End-to-end: a Byzantine leader withholds a committed block body.

    The replicas that never received the block must still end up with the
    complete executed chain, fetched from peers.
    """
    from repro.adversary.equivocation import EquivocatingDamysusLeader

    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250),
        replica_overrides={1: EquivocatingDamysusLeader},
    )
    result = system.run_until_views(5, max_time_ms=300_000)
    assert result.safe
    heights = [r.ledger.height() for r in system.replicas]
    assert max(heights) >= 5
    # No replica is left permanently stuck: everyone within 2 blocks.
    assert min(heights) >= max(heights) - 2
