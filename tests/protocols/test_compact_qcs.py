"""HotStuff with compact (threshold) quorum certificates."""


from repro.core.messages import QCMsg
from repro.crypto.threshold import is_group_signature
from repro.protocols.system import ConsensusSystem
from tests.conftest import run_protocol, small_config


def test_commits_safely_with_compact_qcs():
    _, result = run_protocol("hotstuff", views=5, compact_qcs=True)
    assert result.safe
    assert result.committed_blocks >= 5


def test_certificates_are_single_group_signatures():
    system = ConsensusSystem(small_config("hotstuff", compact_qcs=True))
    qcs = []
    system.network.add_tap(
        lambda s, d, p: qcs.append(p.qc) if isinstance(p, QCMsg) else None
    )
    system.run_until_views(4, max_time_ms=120_000)
    assert qcs
    for qc in qcs:
        assert len(qc.sigs) == 1
        assert is_group_signature(qc.sigs[0])


def test_compact_qcs_shrink_bytes_at_scale():
    """At f = 10 each list QC carries 21 x 64 B; compact ones 64 B."""
    _, full = run_protocol("hotstuff", views=4, f=10, compact_qcs=False)
    _, compact = run_protocol("hotstuff", views=4, f=10, compact_qcs=True)
    assert compact.bytes_sent < full.bytes_sent
    assert compact.safe and full.safe


def test_compact_and_list_runs_agree_on_chain_length():
    _, full = run_protocol("hotstuff", views=4, seed=5)
    _, compact = run_protocol("hotstuff", views=4, seed=5, compact_qcs=True)
    assert full.committed_blocks >= 4
    assert compact.committed_blocks >= 4


def test_replica_without_threshold_rejects_group_qcs():
    """A group signature only verifies inside a compact-configured system."""
    compact_system = ConsensusSystem(small_config("hotstuff", compact_qcs=True))
    plain_system = ConsensusSystem(small_config("hotstuff", compact_qcs=False))
    qcs = []
    compact_system.network.add_tap(
        lambda s, d, p: qcs.append(p.qc) if isinstance(p, QCMsg) else None
    )
    compact_system.run_until_views(2, max_time_ms=120_000)
    plain_system.start()
    replica = plain_system.replicas[0]
    assert qcs
    assert not replica._verify_qc(qcs[0])


def test_liveness_with_crashed_leader_and_compact_qcs():
    system = ConsensusSystem(
        small_config("hotstuff", timeout_ms=250, compact_qcs=True)
    )
    system.crash_replicas([1])
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
