"""Tests for the pacemaker and leader rotation."""

from repro.protocols.pacemaker import Pacemaker, round_robin_leader
from repro.sim.events import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngStream


class Dummy(Process):
    def on_message(self, sender, payload):
        pass


def make(base=100.0, backoff=2.0):
    sim = Simulator()
    process = Dummy(0, sim)
    fired = []
    pacemaker = Pacemaker(
        process, base, backoff, on_timeout=lambda view: fired.append((sim.now, view))
    )
    return sim, pacemaker, fired


def test_round_robin_rotates():
    assert [round_robin_leader(v, 4) for v in range(6)] == [0, 1, 2, 3, 0, 1]


def test_timeout_fires_with_view():
    sim, pacemaker, fired = make()
    pacemaker.start_view(3)
    sim.run()
    assert fired == [(100.0, 3)]
    assert pacemaker.timeouts_fired == 1


def test_success_cancels_timer():
    sim, pacemaker, fired = make()
    pacemaker.start_view(1)
    pacemaker.view_succeeded()
    sim.run()
    assert fired == []


def test_exponential_backoff():
    sim, pacemaker, fired = make(base=100.0, backoff=2.0)
    pacemaker.start_view(1)
    sim.run()
    assert pacemaker.current_timeout_ms == 200.0
    pacemaker.start_view(2)
    sim.run()
    assert pacemaker.current_timeout_ms == 400.0


def test_linear_decrease_on_success():
    sim, pacemaker, fired = make(base=100.0)
    pacemaker.current_timeout_ms = 400.0
    pacemaker.start_view(1)
    pacemaker.view_succeeded()
    assert pacemaker.current_timeout_ms == 350.0  # decrease = base / 2
    for _ in range(100):
        pacemaker.view_succeeded()
    assert pacemaker.current_timeout_ms == 100.0  # floored at base


def test_backoff_capped_at_max_timeout():
    sim, pacemaker, fired = make(base=100.0, backoff=2.0)
    for view in range(1, 10):
        pacemaker.start_view(view)
        sim.run()
    assert pacemaker.current_timeout_ms == 400.0  # capped at 4x base


def test_jitter_perturbs_the_armed_timeout_but_not_the_backoff():
    sim = Simulator()
    process = Dummy(0, sim)
    fired = []
    pacemaker = Pacemaker(
        process,
        100.0,
        on_timeout=lambda view: fired.append(sim.now),
        jitter_fraction=0.2,
        rng=RngStream(1, "jitter-test"),
    )
    pacemaker.start_view(1)
    sim.run()
    assert fired[0] != 100.0  # perturbed...
    assert 80.0 <= fired[0] <= 120.0  # ...within +/- 20%
    assert pacemaker.current_timeout_ms == 200.0  # backoff uses the base


def test_jitter_is_deterministic_per_seed():
    def fire_times(seed):
        sim = Simulator()
        pacemaker = Pacemaker(
            Dummy(0, sim),
            100.0,
            jitter_fraction=0.2,
            rng=RngStream(seed, "jitter-test"),
        )
        times = []
        for view in range(1, 4):
            pacemaker.start_view(view)
            sim.run()
            times.append(sim.now)
        return times

    assert fire_times(7) == fire_times(7)
    assert fire_times(7) != fire_times(8)


def test_jitter_off_by_default():
    sim, pacemaker, fired = make()
    pacemaker.start_view(1)
    sim.run()
    assert fired == [(100.0, 1)]  # exact base timeout, no perturbation


def test_new_view_replaces_timer():
    sim, pacemaker, fired = make()
    pacemaker.start_view(1)
    pacemaker.start_view(2)  # re-arms; view-1 timer must not fire
    sim.run()
    assert [view for _, view in fired] == [2]


def test_custom_max_timeout_overrides_the_default_cap():
    sim = Simulator()
    pacemaker = Pacemaker(
        Dummy(0, sim), 100.0, 2.0, on_timeout=lambda view: None,
        max_timeout_ms=250.0,
    )
    for view in range(1, 10):
        pacemaker.start_view(view)
        sim.run()
    assert pacemaker.current_timeout_ms == 250.0
