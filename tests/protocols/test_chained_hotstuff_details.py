"""Unit-level tests of chained HotStuff's certificates, locks and commits."""

from repro.core.certificate import QuorumCert
from repro.protocols.system import ConsensusSystem
from tests.conftest import run_protocol, small_config


def test_blocks_carry_prepare_qcs():
    system, _ = run_protocol("chained-hotstuff", views=5)
    replica = system.replicas[0]
    for block in replica.ledger.executed:
        if block.view == 1:
            assert block.justify.is_genesis
        else:
            assert isinstance(block.justify, QuorumCert)
            assert len(block.justify.sigs) == system.quorum
            assert block.justify.view == block.view - 1

def test_four_chain_commit_lag():
    """A block executes when the proposal three views later arrives."""
    system, _ = run_protocol("chained-hotstuff", views=6)
    executions = {}
    for rec in system.monitor.executions:
        executions.setdefault(rec.view, rec.executed_at)
    replica = system.replicas[0]
    proposals = {b.view: b.created_at for b in replica.ledger.executed}
    for view, executed_at in executions.items():
        # Execution happens after the view+3 proposal exists.
        later = proposals.get(view + 3)
        if later is not None:
            assert executed_at >= later

def test_lock_advances_with_chain():
    system, _ = run_protocol("chained-hotstuff", views=6)
    for replica in system.replicas:
        assert replica.locked_qc.view >= 3  # locks formed along the run
        assert replica.high_qc.view >= replica.locked_qc.view

def test_executes_one_view_later_than_chained_damysus():
    _, hs = run_protocol("chained-hotstuff", views=5, seed=2)
    _, dam = run_protocol("chained-damysus", views=5, seed=2)
    assert dam.mean_latency_ms < hs.mean_latency_ms

def test_timeout_recovery_reproposes_high_qc():
    system = ConsensusSystem(small_config("chained-hotstuff", timeout_ms=250))
    system.crash_replicas([2])
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    # Gap views exist: some executed block is justified by a QC from a
    # non-adjacent view (the recovery path extends the highest known QC).
    replica = system.replicas[0]
    views = [b.view for b in replica.ledger.executed]
    assert views == sorted(views)

def test_scale_smoke_f20():
    """Chained HotStuff at N=61 commits promptly (logic-only run)."""
    _, result = run_protocol("chained-hotstuff", views=4, f=20)
    assert result.safe
    assert result.committed_blocks >= 4
