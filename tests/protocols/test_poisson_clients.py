"""Tests for Poisson (exponential inter-arrival) client load."""


from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def build(poisson, seed=42):
    return ConsensusSystem(
        small_config(
            "damysus",
            open_loop=False,
            num_clients=2,
            client_interval_ms=5.0,
            client_poisson=poisson,
            block_size=20,
            seed=seed,
        )
    )


def test_poisson_clients_make_progress():
    system = build(poisson=True)
    system.run(400.0)
    assert sum(len(c.completed) for c in system.clients) > 0


def test_poisson_arrivals_are_irregular():
    system = build(poisson=True)
    system.run(400.0)
    times = sorted(system.clients[0].submitted.values())
    # Completed requests were popped from `submitted`; reconstruct from both.
    times = sorted(
        [c.submitted_at for c in system.clients[0].completed]
        + list(system.clients[0].submitted.values())
    )
    gaps = {round(b - a, 6) for a, b in zip(times, times[1:], strict=False)}
    assert len(gaps) > 3  # periodic arrivals would give a single gap


def test_periodic_arrivals_are_regular():
    system = build(poisson=False)
    system.run(400.0)
    client = system.clients[0]
    times = sorted(
        [c.submitted_at for c in client.completed] + list(client.submitted.values())
    )
    gaps = {round(b - a, 6) for a, b in zip(times, times[1:], strict=False)}
    assert gaps == {5.0}


def test_poisson_is_seed_deterministic():
    r1 = build(poisson=True, seed=7)
    r2 = build(poisson=True, seed=7)
    r1.run(300.0)
    r2.run(300.0)
    assert [c.tx_id for c in r1.clients[0].completed] == [
        c.tx_id for c in r2.clients[0].completed
    ]


def test_mean_rate_approximates_interval():
    system = build(poisson=True)
    system.run(2_000.0)
    client = system.clients[0]
    total = len(client.completed) + len(client.submitted)
    # ~400 expected at one submission per 5 ms over 2 s; allow wide slack.
    assert 200 < total < 700
