"""Certified checkpoints + state-transfer catch-up on the simulator."""

import pytest

from repro.analysis.chaos import monotone_prefixes_ok
from repro.core.executor import fold_state_root
from repro.errors import TEERefusal
from repro.runtime.sim import ConsensusSystem
from repro.tee.checkpoint import verify_checkpoint
from tests.conftest import small_config


def canonical_root_at(system, height):
    """Fold the oracle's canonical chain prefix into a state root."""
    canonical = system.oracle.canonical_chain()
    assert height <= len(canonical)
    root = system.replicas[0].store.genesis.hash
    for block_hash in canonical[:height]:
        root = fold_state_root(root, block_hash)
    return root


def test_checkpoints_certified_and_log_compacted():
    system = ConsensusSystem(small_config("damysus", checkpoint_interval=5))
    system.start()
    system.run_until_views(30, max_time_ms=600_000)
    for replica in system.replicas:
        ckpt = replica.latest_checkpoint
        assert ckpt is not None
        # Certification is publicly verifiable against the directory.
        verify_checkpoint(ckpt, replica.scheme, replica.directory, replica.quorum)
        # The block log below the horizon is garbage-collected.
        assert replica.ledger.base_height == ckpt.height
        assert len(replica.ledger.executed) == replica.ledger.height() - ckpt.height
        # The certified root is the fold over the canonical chain.
        assert ckpt.state_root == canonical_root_at(system, ckpt.height)
        assert ckpt.block_hash == system.oracle.canonical_chain()[ckpt.height - 1]


def test_no_checkpoints_without_interval():
    system = ConsensusSystem(small_config("damysus"))
    system.start()
    system.run_until_views(20, max_time_ms=600_000)
    for replica in system.replicas:
        assert replica.latest_checkpoint is None
        assert replica.ledger.base_height == 0


def test_crashed_replica_rejoins_via_checkpoint_transfer():
    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=10, block_size=1)
    )
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    system.run_until_views(400, max_time_ms=3_000_000)
    system.recover_replicas([victim])
    system.run_until_views(480, max_time_ms=6_000_000)

    recovered = system.replicas[victim]
    assert recovered.caught_up_via_checkpoint
    assert recovered.catchup.completed >= 1
    honest = system.replicas[0]
    # The victim skipped the compacted prefix: it holds a base above 0
    # and a height in the honest replicas' neighbourhood.
    assert recovered.ledger.base_height > 0
    assert recovered.ledger.height() >= honest.ledger.base_height
    # Digest equality: the victim's rolling root is bit-identical to the
    # canonical fold at its height (same function both runtimes use).
    assert recovered.ledger.state_root == canonical_root_at(
        system, recovered.ledger.height()
    )
    assert system.oracle.safe
    assert monotone_prefixes_ok(system)


def test_replica_partitioned_for_10k_views_rejoins():
    """The acceptance scenario: out for >= 10k views, rejoins by transfer."""
    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=50, block_size=1)
    )
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    views_before = len(system.monitor.committed_views())
    system.crash_replicas([victim])
    system.run_until_views(views_before + 10_000, max_time_ms=50_000_000)
    assert len(system.monitor.committed_views()) >= views_before + 10_000
    system.recover_replicas([victim])
    system.run_until_views(
        len(system.monitor.committed_views()) + 60, max_time_ms=60_000_000
    )

    recovered = system.replicas[victim]
    assert recovered.caught_up_via_checkpoint
    # It rejoined by transfer, not by replaying 10k blocks: the locally
    # retained log is a small suffix above the installed checkpoint.
    assert recovered.ledger.base_height >= 10_000 - 100
    assert len(recovered.ledger.executed) < 500
    assert recovered.ledger.state_root == canonical_root_at(
        system, recovered.ledger.height()
    )
    assert recovered.view_lag() <= system.config.catchup_view_gap
    assert system.oracle.safe
    assert monotone_prefixes_ok(system)


def test_catchup_requester_backs_off_and_gives_up():
    system = ConsensusSystem(
        small_config(
            "damysus",
            checkpoint_interval=5,
            catchup_timeout_ms=100.0,
            catchup_max_retries=4,
        )
    )
    system.start()
    system.run_until_views(3, max_time_ms=600_000)
    lagger = system.replicas[0]
    # Cut the lagger off and ask it to catch up: nobody answers, so the
    # requester retries with growing (seeded-jittered) timeouts and then
    # gives up at the cap.
    others = [r.pid for r in system.replicas if r.pid != lagger.pid]
    system.crash_replicas(others)
    lagger.catchup.start()
    assert lagger.catchup.active
    system.sim.run(until=system.sim.now + 60_000.0)
    assert lagger.catchup.gave_up
    assert not lagger.catchup.active
    assert lagger.catchup.retries == system.config.catchup_max_retries


def test_forged_sync_checkpoint_is_dropped():
    from dataclasses import replace

    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=5, block_size=1)
    )
    system.start()
    system.run_until_views(40, max_time_ms=600_000)
    donor = system.replicas[0]
    target = system.replicas[1]
    ckpt = donor.latest_checkpoint
    assert ckpt is not None
    forged = replace(ckpt, height=ckpt.height + 1_000)
    with pytest.raises(TEERefusal):
        verify_checkpoint(forged, target.scheme, target.directory, target.quorum)
    # The replica-side handler swallows the refusal and keeps its state.
    target.catchup.active = True
    target.catchup.peer = donor.pid
    height_before = target.ledger.height()
    from repro.protocols.sync import SyncCheckpoint

    target._handle_sync_checkpoint(donor.pid, SyncCheckpoint(forged))
    assert target.ledger.height() == height_before
    assert not target.caught_up_via_checkpoint


def test_uncertified_sync_suffix_is_never_executed():
    """A forged block suffix - even one chaining perfectly from the
    victim's last executed block - is refused without a decide QC for
    its tip (the review's safety scenario)."""
    from repro.core.block import create_leaf
    from repro.protocols.sync import SyncBlocks

    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=5, block_size=1)
    )
    system.start()
    system.run_until_views(10, max_time_ms=600_000)
    donor = system.replicas[0]
    target = system.replicas[1]
    target.catchup.active = True
    target.catchup.peer = donor.pid
    height_before = target.ledger.height()
    root_before = target.ledger.state_root
    parent = target.ledger.last_executed_hash
    forged = []
    for i in range(3):
        block = create_leaf(parent, target.view + i + 1, (), created_at=0.0)
        forged.append(block)
        parent = block.hash
    # No certificate at all: nothing executes.
    target._handle_sync_blocks(
        donor.pid, SyncBlocks(height_before, tuple(forged), done=True)
    )
    assert target.ledger.height() == height_before
    assert target.ledger.state_root == root_before
    # An authentic decide QC for a *different* block does not help either.
    qc = donor._last_commit_qc
    assert qc is not None and qc.h_prep != forged[-1].hash
    target._handle_sync_blocks(
        donor.pid, SyncBlocks(height_before, tuple(forged), done=True, tip_qc=qc)
    )
    assert target.ledger.height() == height_before
    assert target.ledger.state_root == root_before


def test_sync_replies_from_wrong_peer_are_ignored():
    """Only the peer currently being synced from may feed the transfer -
    even authentic records from a bystander are dropped."""
    from repro.protocols.sync import SyncBlocks, SyncCheckpoint

    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=10, block_size=1)
    )
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    system.run_until_views(60, max_time_ms=3_000_000)
    system.recover_replicas([victim])
    lagger = system.replicas[victim]
    donor = system.replicas[0]
    stranger = system.replicas[1]
    ckpt = stranger.latest_checkpoint
    assert ckpt is not None and ckpt.height > lagger.ledger.height()
    lagger.catchup.active = True
    lagger.catchup.peer = donor.pid
    # The checkpoint is authentic, but the sender was never asked.
    lagger._handle_sync_checkpoint(stranger.pid, SyncCheckpoint(ckpt))
    assert not lagger.caught_up_via_checkpoint
    lagger._handle_sync_blocks(
        stranger.pid, SyncBlocks(lagger.sync_have_height(), (), done=True)
    )
    assert lagger.catchup.active  # an unsolicited "done" cannot finish it
    # The same record from the solicited peer installs.
    lagger._handle_sync_checkpoint(donor.pid, SyncCheckpoint(ckpt))
    assert lagger.caught_up_via_checkpoint
    assert lagger.ledger.height() == ckpt.height


def test_single_peer_cannot_inflate_view_lag():
    """The behind-detection watermark needs f+1 distinct senders: one
    Byzantine peer claiming a huge view moves nothing."""
    system = ConsensusSystem(
        small_config("damysus", checkpoint_interval=5, block_size=1)
    )
    system.start()
    system.run_until_views(3, max_time_ms=600_000)
    replica = system.replicas[0]
    assert not replica.catchup.active
    byzantine_view = replica.view + 10_000
    replica._buffer(byzantine_view, 1, None)
    assert replica.view_lag() < system.config.catchup_view_gap
    assert not replica.catchup.active
    # A second distinct sender corroborates the claim (f+1 = 2 of 3).
    replica._buffer(byzantine_view, 2, None)
    assert replica.view_lag() >= 10_000
    assert replica.catchup.active


def test_chunked_transfer_survives_the_rate_limit():
    """Continuation requests of one chunked session are exempt from the
    per-sender rate limit: the whole transfer completes inside a single
    window with no timeout-paced retries."""
    system = ConsensusSystem(
        small_config(
            "damysus",
            checkpoint_interval=30,
            block_size=1,
            sync_chunk_blocks=3,
            sync_min_interval_ms=120_000.0,
        )
    )
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    system.run_until_views(60, max_time_ms=3_000_000)
    system.recover_replicas([victim])
    system.run_until_views(80, max_time_ms=6_000_000)

    recovered = system.replicas[victim]
    assert recovered.caught_up_via_checkpoint
    assert recovered.catchup.completed >= 1
    assert recovered.catchup.retries == 0
    assert recovered.ledger.height() >= 30
    assert system.oracle.safe
    assert monotone_prefixes_ok(system)
