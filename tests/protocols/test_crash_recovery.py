"""Crash-recovery tests: sealed TEE state, rollback refusal, rejoin."""

import pytest

from repro.errors import TEERefusal
from repro.protocols.registry import PROTOCOL_ORDER
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def run_until_fresh_views(system, fresh, max_time_ms=300_000.0):
    target = len(system.monitor.committed_views()) + fresh
    return system.run_until_views(target, max_time_ms=max_time_ms)


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_mid_run_crash_then_recovery_stays_safe_and_live(protocol):
    system = ConsensusSystem(small_config(protocol, f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=200.0)
    system.crash_replicas([2])
    system.sim.run(until=600.0)
    system.recover_replicas([2])
    result = run_until_fresh_views(system, 6)
    assert result.safe
    assert result.committed_blocks >= 6
    replica = system.replicas[2]
    assert replica.crash_count == 1 and replica.recovery_count == 1
    assert not replica.crashed


def test_repeated_crash_recover_cycles_damysus():
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    at = 200.0
    for _ in range(3):
        system.sim.run(until=at)
        system.crash_replicas([2])
        system.sim.run(until=at + 300.0)
        system.recover_replicas([2])
        at += 600.0
    result = run_until_fresh_views(system, 4)
    assert result.safe
    assert result.committed_blocks >= 4
    assert system.replicas[2].recovery_count == 3


def test_recovered_replica_rejoins_at_checker_view():
    """The unsealed step counter is the trustworthy floor for rejoining."""
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=400.0)
    replica = system.replicas[2]
    view_at_crash = replica.checker.step.view
    replica.crash()
    system.sim.run(until=800.0)
    replica.recover()
    assert replica.checker.step.view >= view_at_crash
    assert replica.view >= view_at_crash


def test_rolled_back_seal_is_rejected_at_replica_level():
    """Presenting an old snapshot must raise and leave the replica down."""
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=300.0)
    replica = system.replicas[2]
    replica.crash()
    stale = replica._sealed_snapshot  # seal counter N
    system.sim.run(until=600.0)
    replica.recover()  # consumes the snapshot, bumps latest to N
    system.sim.run(until=900.0)
    replica.crash()  # reseals at counter N+1
    with pytest.raises(TEERefusal):
        replica.recover(sealed=stale)
    assert replica.crashed  # the rollback attempt did not revive it
    assert replica.recovery_count == 1
    replica.recover()  # the genuine latest snapshot still works
    assert not replica.crashed
    assert replica.recovery_count == 2


def test_recovery_without_sealed_state_is_refused_for_tee_replicas():
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=300.0)
    replica = system.replicas[2]
    replica.crash()
    with pytest.raises(TEERefusal):
        replica.recover(sealed=None)
    assert replica.crashed


def test_recovered_checker_refuses_resigning_passed_steps():
    """After recovery the checker continues strictly past its sealed step."""
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=400.0)
    replica = system.replicas[2]
    replica.crash()
    sealed_step = (replica.checker.step.view, replica.checker.step.phase)
    system.sim.run(until=700.0)
    replica.recover()
    phi = replica.checker.tee_sign()
    assert (phi.v_prep, phi.phase) >= sealed_step


def test_crash_and_recover_are_idempotent():
    system = ConsensusSystem(small_config("damysus", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=200.0)
    replica = system.replicas[2]
    replica.recover()  # not crashed: no-op
    assert replica.recovery_count == 0
    replica.crash()
    replica.crash()  # already crashed: no-op
    assert replica.crash_count == 1
    replica.recover()
    assert replica.recovery_count == 1


def test_hotstuff_recovery_without_tee_keeps_stable_certificates():
    """Protocols without a checker recover from stable storage alone."""
    system = ConsensusSystem(small_config("hotstuff", f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=400.0)
    replica = system.replicas[2]
    locked_before = replica.locked_qc
    replica.crash()
    system.sim.run(until=800.0)
    replica.recover()  # no sealed state needed
    assert not replica.crashed
    assert replica.locked_qc == locked_before
    result = run_until_fresh_views(system, 4)
    assert result.safe
    assert result.committed_blocks >= 4
