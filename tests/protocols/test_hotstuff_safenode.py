"""Unit tests of HotStuff's locking scheme and SafeNode predicate."""

import pytest

from repro.core.block import create_leaf
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.mempool import Transaction
from repro.core.phases import Phase
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def tx(i):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


@pytest.fixture
def replica():
    system = ConsensusSystem(small_config("hotstuff"))
    return system.replicas[0]


def qc_for(replica, block, view, phase=Phase.PREPARE):
    payload = vote_payload(view, phase, block.hash)
    sigs = tuple(replica.scheme.sign(s, payload) for s in range(replica.quorum))
    return QuorumCert(view, block.hash, phase, sigs)


def test_safenode_accepts_extension_of_lock(replica):
    locked_block = create_leaf(replica.store.genesis.hash, 1, (tx(1),))
    replica.store.add(locked_block)
    replica.locked_qc = qc_for(replica, locked_block, 1, Phase.PRECOMMIT)
    child = create_leaf(locked_block.hash, 2, (tx(2),))
    replica.store.add(child)
    justify = qc_for(replica, locked_block, 1)
    assert replica._safe_node(child, justify)


def test_safenode_accepts_transitive_extension(replica):
    b1 = create_leaf(replica.store.genesis.hash, 1, (tx(1),))
    b2 = create_leaf(b1.hash, 2, (tx(2),))
    b3 = create_leaf(b2.hash, 3, (tx(3),))
    for b in (b1, b2, b3):
        replica.store.add(b)
    replica.locked_qc = qc_for(replica, b1, 1, Phase.PRECOMMIT)
    assert replica._safe_node(b3, qc_for(replica, b2, 2))


def test_safenode_rejects_conflicting_low_justify(replica):
    locked_block = create_leaf(replica.store.genesis.hash, 2, (tx(1),))
    replica.store.add(locked_block)
    replica.locked_qc = qc_for(replica, locked_block, 2, Phase.PRECOMMIT)
    # A conflicting branch justified at a view NOT above the lock.
    stray = create_leaf(replica.store.genesis.hash, 3, (tx(2),))
    replica.store.add(stray)
    low_justify = genesis_qc(replica.store.genesis.hash)  # view 0 < lock 2
    assert not replica._safe_node(stray, low_justify)


def test_safenode_liveness_rule_unlocks_on_higher_view(replica):
    locked_block = create_leaf(replica.store.genesis.hash, 2, (tx(1),))
    replica.store.add(locked_block)
    replica.locked_qc = qc_for(replica, locked_block, 2, Phase.PRECOMMIT)
    # A conflicting branch prepared at view 5 > 2: accept (liveness).
    other = create_leaf(replica.store.genesis.hash, 5, (tx(2),))
    replica.store.add(other)
    parent_qc = qc_for(replica, other, 5)
    child = create_leaf(other.hash, 6, (tx(3),))
    replica.store.add(child)
    assert replica._safe_node(child, parent_qc)


def test_lock_only_rises(replica):
    """`_handle_qc` never replaces the lock with an older certificate."""
    b_new = create_leaf(replica.store.genesis.hash, 5, (tx(1),))
    replica.store.add(b_new)
    high = qc_for(replica, b_new, 5, Phase.PRECOMMIT)
    replica.locked_qc = high
    from repro.core.messages import QCMsg

    b_old = create_leaf(replica.store.genesis.hash, 3, (tx(2),))
    replica.store.add(b_old)
    old = qc_for(replica, b_old, 3, Phase.PRECOMMIT)
    replica.view = 3
    replica.dispatch(replica.leader_of(3), QCMsg(3, Phase.PRECOMMIT, old))
    assert replica.locked_qc is high
