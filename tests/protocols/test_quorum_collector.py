"""Tests for the quorum collector."""

from repro.protocols.replica import QuorumCollector


def test_fires_exactly_once_at_threshold():
    collector = QuorumCollector(3)
    assert collector.add("k", "a", 0) is None
    assert collector.add("k", "b", 1) is None
    assert collector.add("k", "c", 2) == ["a", "b", "c"]
    assert collector.add("k", "d", 3) is None  # already done


def test_deduplicates_by_id():
    collector = QuorumCollector(2)
    assert collector.add("k", "a", 0) is None
    assert collector.add("k", "a2", 0) is None  # same contributor
    assert collector.count("k") == 1
    assert collector.add("k", "b", 1) == ["a", "b"]


def test_keys_are_independent():
    collector = QuorumCollector(2)
    collector.add("k1", "a", 0)
    assert collector.add("k2", "x", 0) is None
    assert collector.add("k1", "b", 1) == ["a", "b"]
    assert collector.add("k2", "y", 1) == ["x", "y"]


def test_threshold_one():
    collector = QuorumCollector(1)
    assert collector.add("k", "only", 0) == ["only"]


def test_discard_before_view_clears_stale_state():
    collector = QuorumCollector(2)
    collector.add((1, "x"), "a", 0)
    collector.add((5, "y"), "b", 0)
    collector.add(2, "c", 0)  # bare-int view keys are pruned too
    collector.discard_before_view(3)
    assert collector.count((1, "x")) == 0
    assert collector.count(2) == 0
    assert collector.count((5, "y")) == 1


def test_done_keys_survive_discard_filter():
    collector = QuorumCollector(1)
    collector.add((5, "y"), "b", 0)
    collector.discard_before_view(3)
    assert collector.add((5, "y"), "c", 1) is None  # still marked done


def test_discard_ignores_unviewed_keys():
    collector = QuorumCollector(2)
    collector.add("opaque", "a", 0)
    collector.discard_before_view(100)
    assert collector.count("opaque") == 1


def test_pending_keys_counts_state():
    collector = QuorumCollector(1)
    assert collector.pending_keys() == 0
    collector.add((1, "x"), "a", 0)
    assert collector.pending_keys() >= 1
    collector.discard_before_view(5)
    assert collector.pending_keys() == 0


def test_discard_clears_dedup_state_too():
    # After GC, a pruned key starts from scratch: the old contributors'
    # dedup entries must not shadow fresh additions.
    collector = QuorumCollector(2)
    collector.add((1, "x"), "a", 0)
    collector.discard_before_view(2)
    assert collector.add((1, "x"), "a2", 0) is None  # fresh key, count 1
    assert collector.count((1, "x")) == 1
    assert collector.add((1, "x"), "b", 1) == ["a2", "b"]


def test_discard_clears_done_marks_below_horizon():
    # Done-marks below the horizon are dropped with the rest of the state,
    # so a resurrected stale key can fire again (staleness filtering is
    # the replica's job, not the collector's).
    collector = QuorumCollector(1)
    assert collector.add((1, "x"), "a", 0) == ["a"]
    collector.discard_before_view(2)
    assert collector.add((1, "x"), "b", 0) == ["b"]


def test_discard_at_horizon_keeps_exact_view():
    collector = QuorumCollector(2)
    collector.add(3, "a", 0)
    collector.discard_before_view(3)  # strictly-below semantics
    assert collector.count(3) == 1
