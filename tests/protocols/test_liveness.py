"""Liveness tests: progress despite crashes and timeouts.

All six protocols must keep committing when f replicas crash - including
when crashed replicas are scheduled as leaders, exercising the timeout /
new-view path.
"""

import pytest

from repro.protocols.registry import PROTOCOL_ORDER, get_spec
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_progress_with_f_crashed_followers(protocol):
    """Crash f replicas that are not early leaders; no timeout needed."""
    spec = get_spec(protocol)
    f = 1
    n = spec.num_replicas(f)
    system = ConsensusSystem(small_config(protocol, f=f, timeout_ms=300))
    system.crash_replicas([n - 1])  # the last replica leads latest
    result = system.run_until_views(4, max_time_ms=120_000)
    assert result.safe
    assert result.committed_blocks >= 4


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_progress_with_crashed_leader(protocol):
    """Crash the leader of an early view; its views must time out."""
    system = ConsensusSystem(small_config(protocol, f=1, timeout_ms=250))
    system.crash_replicas([1])  # leader of view 1 (and every N-th view)
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4
    # At least one correct replica must have observed a timeout.
    assert any(r.pacemaker.timeouts_fired > 0 for r in system.replicas if not r.crashed)


@pytest.mark.parametrize("protocol", ["hotstuff", "damysus"])
def test_progress_with_f_crashes_at_larger_f(protocol):
    spec = get_spec(protocol)
    f = 2
    n = spec.num_replicas(f)
    system = ConsensusSystem(small_config(protocol, f=f, timeout_ms=250))
    system.crash_replicas([1, n - 1])  # one early leader + one follower
    result = system.run_until_views(4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= 4


@pytest.mark.parametrize("protocol", ["hotstuff", "damysus", "chained-damysus"])
def test_mid_run_crash_does_not_halt(protocol):
    system = ConsensusSystem(small_config(protocol, f=1, timeout_ms=250))
    system.start()
    system.sim.run(until=100.0)
    committed_before = len(system.monitor.committed_views())
    system.crash_replicas([2])
    result = system.run_until_views(committed_before + 4, max_time_ms=300_000)
    assert result.safe
    assert result.committed_blocks >= committed_before + 4


@pytest.mark.parametrize("protocol", ["damysus", "hotstuff"])
def test_recovery_under_partial_synchrony(protocol):
    """Pre-GST chaos delays messages arbitrarily; progress resumes after GST."""
    config = small_config(
        protocol,
        f=1,
        timeout_ms=400,
        gst_ms=500.0,
        delta_ms=100.0,
        pre_gst_extra_ms=400.0,
    )
    system = ConsensusSystem(config)
    result = system.run_until_views(4, max_time_ms=600_000)
    assert result.safe
    assert result.committed_blocks >= 4
