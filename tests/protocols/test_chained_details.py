"""Unit-level tests of the chained protocols' distinctive mechanics."""


from repro.core.phases import Phase
from repro.protocols.chained_damysus import ChainedVote
from repro.protocols.system import ConsensusSystem
from tests.conftest import run_protocol, small_config


def test_chained_damysus_executes_on_three_chain():
    """A block executes exactly two views after its proposal (3-chain)."""
    system, _ = run_protocol("chained-damysus", views=6)
    replica = system.replicas[0]
    executed_views = sorted({b.view for b in replica.ledger.executed})
    # Block of view v executes while processing view v+2's proposal, so
    # with the run stopped after ~8 views, views 1..6 are all in.
    assert executed_views[0] == 1
    assert executed_views == list(range(1, executed_views[-1] + 1))


def test_chained_hotstuff_executes_on_four_chain():
    """Chained HotStuff needs one more view in the pipeline."""
    dam_sys, _ = run_protocol("chained-damysus", views=5)
    hs_sys, _ = run_protocol("chained-hotstuff", views=5)
    # For the same proposal times, Damysus's execution lag is one view
    # shorter; compare mean latency at zero CPU cost (pure pipeline).
    dam_lat = dam_sys.monitor.mean_latency_ms()
    hs_lat = hs_sys.monitor.mean_latency_ms()
    assert dam_lat < hs_lat


def test_chained_blocks_carry_justifications():
    system, _ = run_protocol("chained-damysus", views=4)
    replica = system.replicas[0]
    for block in replica.ledger.executed:
        if block.view == 1:
            assert block.justify is not None and block.justify.is_genesis
        else:
            assert block.justify is not None
            assert block.justify.cview == block.view - 1
            assert block.parent == block.justify.hash


def test_chained_damysus_certificates_are_commitments_after_view1():
    from repro.core.commitment import Commitment

    system, _ = run_protocol("chained-damysus", views=4)
    replica = system.replicas[0]
    later = [b for b in replica.ledger.executed if b.view >= 2]
    assert later
    for block in later:
        assert isinstance(block.justify, Commitment)
        assert len(block.justify.sigs) == system.quorum
        assert block.justify.phase == Phase.PREPARE


def test_chained_vote_routing_targets_next_view():
    system = ConsensusSystem(small_config("chained-damysus"))
    replica = system.replicas[0]
    from repro.core.commitment import Commitment
    from repro.crypto.scheme import Signature

    nv = Commitment(None, 3, b"\x01" * 32, 1, Phase.NEW_VIEW, (Signature(0, b"", "x"),))
    vote = ChainedVote(3, None, nv)
    assert replica.message_view(vote) == 4


def test_chained_vote_wire_size():
    from repro.core.commitment import Commitment
    from repro.crypto.scheme import Signature

    nv = Commitment(None, 3, b"\x01" * 32, 1, Phase.NEW_VIEW, (Signature(0, b"", "x"),))
    prep = Commitment(b"\x02" * 32, 3, None, None, Phase.PREPARE, (Signature(0, b"", "x"),))
    bare = ChainedVote(3, None, nv)
    full = ChainedVote(3, prep, nv)
    assert full.wire_size() == bare.wire_size() + prep.wire_size()


def test_chained_damysus_tee_prepared_follows_chain():
    """Each replica's checker stores the latest certified block."""
    system, _ = run_protocol("chained-damysus", views=5)
    replica = system.replicas[0]
    checker = replica.checker
    # The stored prepared view trails the head by the pipeline depth.
    head_view = max(b.view for b in replica.ledger.executed)
    assert checker.prepared_view >= head_view


def test_chained_gap_recovery_after_silent_view():
    """A failed view leaves a gap; the next certificate is an accumulator."""
    from repro.core.certificate import Accumulator

    system = ConsensusSystem(small_config("chained-damysus", f=1, timeout_ms=250))
    system.crash_replicas([1])  # leader of views 1, 4, 7...
    system.run_until_views(4, max_time_ms=300_000)
    replica = system.replicas[0]
    accumulator_justified = [
        b
        for b in replica.store._by_hash.values()  # noqa: SLF001 - test introspection
        if b.justify is not None and isinstance(b.justify, Accumulator)
    ]
    assert accumulator_justified, "timeout recovery must use the accumulator"
