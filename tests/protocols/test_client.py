"""Tests for the closed-loop client path (Fig 9 machinery)."""


from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def closed_loop_config(protocol="damysus", **overrides):
    params = dict(
        open_loop=False,
        num_clients=2,
        client_interval_ms=5.0,
        block_size=50,
    )
    params.update(overrides)
    return small_config(protocol, **params)


def test_clients_receive_replies():
    system = ConsensusSystem(closed_loop_config())
    system.run(400.0)
    completed = sum(len(c.completed) for c in system.clients)
    assert completed > 0


def test_client_latency_positive_and_bounded():
    system = ConsensusSystem(closed_loop_config())
    system.run(400.0)
    for client in system.clients:
        for record in client.completed:
            assert 0 < record.latency_ms < 400.0


def test_first_reply_wins_and_duplicates_ignored():
    system = ConsensusSystem(closed_loop_config())
    system.run(400.0)
    for client in system.clients:
        tx_ids = [c.tx_id for c in client.completed]
        assert len(tx_ids) == len(set(tx_ids))


def test_closed_loop_blocks_contain_client_txs():
    system = ConsensusSystem(closed_loop_config())
    system.run(400.0)
    executed = system.replicas[0].ledger.executed
    client_txs = [
        tx for block in executed for tx in block.transactions if tx.client_id >= 0
    ]
    assert client_txs


def test_client_total_txs_limit():
    system = ConsensusSystem(closed_loop_config(client_total_txs=3))
    system.run(500.0)
    for client in system.clients:
        assert len(client.submitted) + len(client.completed) <= 3


def test_client_throughput_metric():
    system = ConsensusSystem(closed_loop_config())
    system.run(400.0)
    client = system.clients[0]
    if client.completed:
        assert client.throughput_kops(400.0) > 0
    assert client.throughput_kops(0.0) == 0.0


def test_light_load_has_low_queueing_delay():
    """Under light load, client latency is close to commit latency."""
    light = ConsensusSystem(closed_loop_config(client_interval_ms=50.0))
    light.run(600.0)
    latencies = [c.mean_latency_ms() for c in light.clients if c.completed]
    assert latencies
    assert all(lat < 300.0 for lat in latencies)
