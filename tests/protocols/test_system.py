"""Tests for configuration, registry and the system builder."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.protocols.registry import PROTOCOL_ORDER, SPECS, get_spec
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def test_registry_covers_evaluated_protocols():
    assert set(PROTOCOL_ORDER) <= set(SPECS)
    assert len(PROTOCOL_ORDER) == 6  # the paper's six evaluated protocols
    # Plus the TEE-free ablation baseline from Section 2.
    assert "fast-hotstuff" in SPECS


def test_spec_table_matches_paper_section8():
    """The protocol table of Section 8 ('Implemented protocols')."""
    expect = {
        "hotstuff": (lambda f: 3 * f + 1, 3, ()),
        "damysus-c": (lambda f: 2 * f + 1, 3, ("checker",)),
        "damysus-a": (lambda f: 3 * f + 1, 2, ("accumulator",)),
        "damysus": (lambda f: 2 * f + 1, 2, ("checker", "accumulator")),
        "chained-hotstuff": (lambda f: 3 * f + 1, 3, ()),
        "chained-damysus": (lambda f: 2 * f + 1, 2, ("checker", "accumulator")),
    }
    for name, (n_fn, phases, tees) in expect.items():
        spec = get_spec(name)
        for f in (1, 10, 40):
            assert spec.num_replicas(f) == n_fn(f)
        assert spec.core_phases == phases
        assert spec.trusted_components == tees


def test_max_faults_follow_replication():
    assert get_spec("hotstuff").max_faults(61) == 20
    assert get_spec("damysus").max_faults(61) == 30


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigError):
        get_spec("pbft-ng")
    with pytest.raises(ConfigError):
        ConsensusSystem(small_config("nope"))


def test_config_validation():
    with pytest.raises(ConfigError):
        SystemConfig(f=0)
    with pytest.raises(ConfigError):
        SystemConfig(block_size=0)
    with pytest.raises(ConfigError):
        SystemConfig(payload_bytes=-1)


def test_system_builds_right_process_count():
    system = ConsensusSystem(small_config("hotstuff", f=2))
    assert len(system.replicas) == 7
    assert len(system.network.processes) == 7


def test_system_with_clients():
    config = small_config(
        "damysus", open_loop=False, num_clients=2, client_interval_ms=5.0
    )
    system = ConsensusSystem(config)
    assert len(system.clients) == 2
    assert len(system.network.processes) == 3 + 2


def test_run_for_fixed_duration():
    system = ConsensusSystem(small_config("damysus"))
    result = system.run(150.0)
    assert result.duration_ms == pytest.approx(150.0)


def test_start_is_idempotent():
    system = ConsensusSystem(small_config("damysus"))
    system.start()
    system.start()
    result = system.run_until_views(2, max_time_ms=60_000)
    assert result.safe


def test_result_fields_consistent():
    system = ConsensusSystem(small_config("damysus"))
    result = system.run_until_views(3, max_time_ms=60_000)
    assert result.protocol == "damysus"
    assert result.f == 1
    assert result.num_replicas == 3
    assert result.committed_views == result.committed_blocks  # one block per view
    assert result.bytes_sent > 0
    assert result.messages_sent > 0


def test_max_timeout_validation():
    with pytest.raises(ConfigError):
        SystemConfig(max_timeout_ms=-1.0)
    with pytest.raises(ConfigError):
        SystemConfig(timeout_ms=500.0, max_timeout_ms=100.0)  # below base


def test_max_timeout_reaches_every_pacemaker():
    system = ConsensusSystem(
        small_config("damysus", timeout_ms=200.0, max_timeout_ms=900.0)
    )
    assert all(r.pacemaker.max_timeout_ms == 900.0 for r in system.replicas)
    # 0 keeps the historical default: four times the base timeout.
    default = ConsensusSystem(small_config("damysus", timeout_ms=200.0))
    assert all(r.pacemaker.max_timeout_ms == 800.0 for r in default.replicas)
