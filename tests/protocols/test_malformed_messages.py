"""Handler-level negative tests: malformed or forged messages change nothing.

Each test injects a crafted message directly into a running replica and
asserts the replica neither votes, advances, executes nor crashes - the
unhappy paths of Fig 2a's abort conditions.
"""


from repro.core.block import create_leaf
from repro.core.certificate import Accumulator, QuorumCert, vote_payload
from repro.core.commitment import Commitment
from repro.core.mempool import Transaction
from repro.core.messages import BlockProposal, CommitmentMsg, ProposalMsg, QCMsg, VoteMsg
from repro.core.phases import Phase
from repro.crypto.scheme import Signature
from repro.protocols.damysus import KIND_DECIDE, KIND_NEW_VIEW, KIND_PREP_QC
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def running(protocol):
    """A system advanced into steady state, paused for injection."""
    system = ConsensusSystem(small_config(protocol))
    system.start()
    system.sim.run(until=120.0)
    return system


def snapshot(replica):
    return (replica.view, replica.ledger.height())


def fake_sig(signer=0):
    return Signature(signer, b"\x00" * 32, "hmac")


def tx(i=0):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


# -- Damysus ---------------------------------------------------------------------


def test_damysus_rejects_proposal_from_non_leader():
    system = running("damysus")
    replica = system.replicas[(system.replicas[0].view + 1) % 3]
    view = replica.view
    wrong_sender = (view + 1) % 3  # not the leader of `view`
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    acc = Accumulator(view, 0, replica.store.genesis.hash, fake_sig(), count=2)
    before = snapshot(replica)
    replica.dispatch(wrong_sender, BlockProposal(view, block, acc, fake_sig()))
    assert snapshot(replica) == before


def test_damysus_rejects_wrong_size_accumulator():
    system = running("damysus")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    acc = Accumulator(view, 0, replica.store.genesis.hash, fake_sig(), count=99)
    before = snapshot(replica)
    replica.dispatch(leader, BlockProposal(view, block, acc, fake_sig()))
    assert snapshot(replica) == before


def test_damysus_rejects_forged_leader_signature():
    system = running("damysus")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    # Right shape, but the accumulator/leader signatures are garbage.
    acc = Accumulator(view, 0, replica.store.genesis.hash, fake_sig(), count=replica.quorum)
    sent = []
    system.network.add_tap(lambda s, d, p: sent.append(p))
    replica.dispatch(leader, BlockProposal(view, block, acc, fake_sig()))
    votes = [p for p in sent if isinstance(p, CommitmentMsg) and "vote" in p.kind]
    assert votes == []


def test_damysus_rejects_forged_decide():
    system = running("damysus")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    phi = Commitment(
        b"\x13" * 32, view, None, None, Phase.PRECOMMIT,
        tuple(fake_sig(i) for i in range(replica.quorum)),
    )
    before = snapshot(replica)
    replica.dispatch(leader, CommitmentMsg(phi, KIND_DECIDE))
    assert snapshot(replica) == before  # no execution, no view change


def test_damysus_ignores_replica_signed_new_view():
    """A new-view commitment must be TEE-signed; a replica key is refused."""
    system = running("damysus")
    leader_pid = None
    for replica in system.replicas:
        if replica.is_leader(replica.view):
            leader_pid = replica.pid
            break
    if leader_pid is None:
        leader_pid = 0
    leader = system.replicas[leader_pid]
    view = leader.view
    payload_phi = Commitment(None, view, b"\x00" * 32, 0, Phase.NEW_VIEW, ())
    sig = leader.scheme.sign(1, payload_phi.signed_payload())  # replica key!
    phi = Commitment(None, view, b"\x00" * 32, 0, Phase.NEW_VIEW, (sig,))
    count_before = leader._new_views.count(view)
    leader.dispatch(1, CommitmentMsg(phi, KIND_NEW_VIEW))
    assert leader._new_views.count(view) == count_before


def test_damysus_prep_qc_with_bad_sigs_is_not_stored():
    system = running("damysus")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    phi = Commitment(
        b"\x14" * 32, view, b"\x00" * 32, 0, Phase.PREPARE,
        tuple(fake_sig(i) for i in range(replica.quorum)),
    )
    prepared_before = replica.checker.prepared_hash
    replica.dispatch(leader, CommitmentMsg(phi, KIND_PREP_QC))
    assert replica.checker.prepared_hash == prepared_before


# -- HotStuff ---------------------------------------------------------------------


def test_hotstuff_rejects_proposal_not_extending_justify():
    system = running("hotstuff")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    qc = replica.prepare_qc
    stray = create_leaf(b"\x55" * 32, view, (tx(),))  # wrong parent
    sent = []
    system.network.add_tap(lambda s, d, p: sent.append(p))
    replica.dispatch(leader, ProposalMsg(view, stray, qc))
    assert not any(isinstance(p, VoteMsg) for p in sent)


def test_hotstuff_rejects_undersized_qc():
    system = running("hotstuff")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    h = b"\x66" * 32
    small_qc = QuorumCert(
        view, h, Phase.PREPARE,
        (replica.scheme.sign(0, vote_payload(view, Phase.PREPARE, h)),),
    )
    before = replica.prepare_qc
    replica.dispatch(leader, QCMsg(view, Phase.PREPARE, small_qc))
    assert replica.prepare_qc == before


def test_hotstuff_rejects_qc_with_duplicate_signers():
    system = running("hotstuff")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    h = b"\x67" * 32
    sig = replica.scheme.sign(0, vote_payload(view, Phase.PRECOMMIT, h))
    dup_qc = QuorumCert(view, h, Phase.PRECOMMIT, (sig,) * replica.quorum)
    locked_before = replica.locked_qc
    replica.dispatch(leader, QCMsg(view, Phase.PRECOMMIT, dup_qc))
    assert replica.locked_qc == locked_before


def test_hotstuff_vote_for_leader_only():
    """Votes sent to a non-leader are ignored entirely."""
    system = running("hotstuff")
    replica = system.replicas[0]
    view = replica.view
    if replica.is_leader(view):
        view += 1  # pick a view this replica does not lead
        if replica.is_leader(view):
            view += 1
    h = b"\x68" * 32
    msg = VoteMsg(view, Phase.PREPARE, h,
                  replica.scheme.sign(1, vote_payload(view, Phase.PREPARE, h)))
    count_before = replica._votes.count((view, Phase.PREPARE, h))
    replica.dispatch(1, msg)
    assert replica._votes.count((view, Phase.PREPARE, h)) == count_before
