"""End-to-end runs over the real Schnorr signature scheme.

These are slower (pure-Python big-int arithmetic), so they use few views
and the 256-bit test group; they prove the protocols do not depend on any
HMAC-scheme artifact.
"""

import pytest

from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


@pytest.mark.parametrize("protocol", ["hotstuff", "damysus", "chained-damysus"])
def test_commits_with_schnorr_signatures(protocol):
    system = ConsensusSystem(small_config(protocol, use_real_crypto=True))
    result = system.run_until_views(3, max_time_ms=120_000)
    assert result.safe
    assert result.committed_blocks >= 3


def test_schnorr_and_hmac_agree_on_chain_length():
    fast = ConsensusSystem(small_config("damysus"))
    real = ConsensusSystem(small_config("damysus", use_real_crypto=True))
    r_fast = fast.run_until_views(3, max_time_ms=120_000)
    r_real = real.run_until_views(3, max_time_ms=120_000)
    assert r_fast.safe and r_real.safe
    assert r_fast.committed_blocks >= 3
    assert r_real.committed_blocks >= 3
