"""Client-side admission accounting: verdict histogram, drops, retries."""

from repro.core.mempool import AdmissionVerdict
from repro.core.messages import ClientReply
from repro.protocols.client import Client
from repro.runtime.effects import Send


class FakeClock:
    def __init__(self):
        self.now = 0.0


def make_client(**kwargs):
    kwargs.setdefault("pid", 100)
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("client_id", 0)
    kwargs.setdefault("replica_pids", [0, 1, 2, 3])
    kwargs.setdefault("payload_bytes", 16)
    kwargs.setdefault("interval_ms", 1e9)  # one submission, then silence
    client = Client(**kwargs)
    client.start()
    return client


def nack(client, sender, tx_id, verdict):
    return client.on_message(
        sender, ClientReply(sender, client.client_id, tx_id, 0.0, verdict)
    )


def test_verdict_histogram_counts_every_reply():
    client = make_client()
    nack(client, 0, 0, AdmissionVerdict.ACCEPTED)
    nack(client, 1, 0, AdmissionVerdict.ACCEPTED)  # duplicate exec replies count
    nack(client, 2, 0, AdmissionVerdict.POOL_FULL)
    nack(client, 3, 0, AdmissionVerdict.RATE_LIMITED)
    assert client.verdicts["accepted"] == 2
    assert client.verdicts["pool-full"] == 1
    assert client.verdicts["rate-limited"] == 1
    assert client.verdicts["duplicate"] == 0


def test_partial_nack_keeps_transaction_inflight():
    client = make_client()
    for sender in range(3):  # 3 of 4 replicas refuse
        nack(client, sender, 0, AdmissionVerdict.POOL_FULL)
    assert client.dropped == 0
    assert 0 in client.submitted


def test_full_nack_drops_the_transaction():
    client = make_client()
    for sender in range(4):
        nack(client, sender, 0, AdmissionVerdict.POOL_FULL)
    assert client.dropped == 1
    assert 0 not in client.submitted
    summary = client.admission_summary()
    assert summary["dropped"] == 1
    assert summary["replies_pool-full"] == 4


def test_repeated_nacks_from_one_replica_do_not_drop():
    client = make_client()
    for _ in range(10):
        nack(client, 0, 0, AdmissionVerdict.RATE_LIMITED)
    assert client.dropped == 0


def test_full_nack_resubmits_within_retry_limit():
    client = make_client(retry_limit=1)
    effects = []
    for sender in range(4):
        effects = nack(client, sender, 0, AdmissionVerdict.RATE_LIMITED)
    # The final NACK triggered a rebroadcast of the same transaction...
    sends = [e for e in effects if isinstance(e, Send)]
    assert [e.dest for e in sends] == [0, 1, 2, 3]
    assert all(e.payload.tx.tx_id == 0 for e in sends)
    assert client.retried == 1
    assert client.dropped == 0
    # ...and a second full round of NACKs exhausts the budget: dropped.
    for sender in range(4):
        nack(client, sender, 0, AdmissionVerdict.RATE_LIMITED)
    assert client.dropped == 1


def test_acceptance_after_nacks_completes_normally():
    client = make_client()
    nack(client, 0, 0, AdmissionVerdict.POOL_FULL)
    nack(client, 1, 0, AdmissionVerdict.ACCEPTED)
    assert len(client.completed) == 1
    assert client.dropped == 0
    # Late NACKs for a completed transaction are ignored.
    nack(client, 2, 0, AdmissionVerdict.POOL_FULL)
    nack(client, 3, 0, AdmissionVerdict.POOL_FULL)
    assert client.dropped == 0


def test_replies_for_other_clients_ignored():
    client = make_client(client_id=5)
    client.on_message(0, ClientReply(0, 6, 0, 0.0, AdmissionVerdict.POOL_FULL))
    assert sum(client.verdicts.values()) == 0
