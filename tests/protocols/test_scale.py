"""Scale smoke tests at the paper's largest fault thresholds."""

import pytest

from tests.conftest import run_protocol


@pytest.mark.parametrize(
    "protocol,f,n",
    [
        ("damysus", 40, 81),
        ("hotstuff", 40, 121),
        ("chained-damysus", 30, 61),
    ],
)
def test_commits_at_paper_max_scale(protocol, f, n):
    system, result = run_protocol(protocol, views=3, f=f)
    assert result.num_replicas == n
    assert result.safe
    assert result.committed_blocks >= 3


def test_message_volume_scales_linearly_not_quadratically():
    """Streamlined protocols: per-view messages are O(n), not O(n^2)."""
    _, small = run_protocol("damysus", views=4, f=4)  # N = 9
    _, large = run_protocol("damysus", views=4, f=40)  # N = 81
    per_view_small = small.messages_sent / small.committed_views
    per_view_large = large.messages_sent / large.committed_views
    ratio = per_view_large / per_view_small
    n_ratio = 81 / 9
    assert ratio < n_ratio * 1.5  # linear-ish, nowhere near (n_ratio)^2


def test_quorums_scale_with_f():
    system, _ = run_protocol("damysus", views=3, f=40)
    assert system.quorum == 41  # f + 1
    hs, _ = run_protocol("hotstuff", views=3, f=40)
    assert hs.quorum == 81  # 2f + 1
