"""Negative-path tests specific to Damysus-C and Damysus-A handlers."""


from repro.core.block import create_leaf
from repro.core.certificate import Accumulator, genesis_qc
from repro.core.commitment import Commitment
from repro.core.mempool import Transaction
from repro.core.messages import BlockProposal, NewViewAMsg, ProposalAMsg
from repro.core.phases import Phase
from repro.crypto.scheme import Signature
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def running(protocol):
    system = ConsensusSystem(small_config(protocol))
    system.start()
    system.sim.run(until=120.0)
    return system


def fake_sig(signer=0):
    return Signature(signer, b"\x00" * 32, "hmac")


def tx(i=0):
    return Transaction(client_id=0, tx_id=i, payload_bytes=0)


# -- Damysus-C -------------------------------------------------------------------


def test_damysus_c_rejects_proposal_with_wrong_view_justification():
    system = running("damysus-c")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    # TEE-style new-view commitment for the WRONG view.
    justify = Commitment(None, view + 5, replica.store.genesis.hash, 0,
                         Phase.NEW_VIEW, (fake_sig(),))
    sent = []
    system.network.add_tap(lambda s, d, p: sent.append(p))
    replica.dispatch(
        leader,
        BlockProposal(view, block, None, fake_sig(), justify_commitment=justify),
    )
    assert not any(
        getattr(p, "kind", "").endswith("prep-vote") for p in sent
    )


def test_damysus_c_rejects_proposal_without_justification():
    system = running("damysus-c")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    before = (replica.view, replica.ledger.height())
    replica.dispatch(leader, BlockProposal(view, block, None, fake_sig()))
    assert (replica.view, replica.ledger.height()) == before


def test_damysus_c_locked_checker_rejects_stale_commitments_in_decides():
    system = running("damysus-c")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    from repro.protocols.damysus_c import KIND_DECIDE
    from repro.core.messages import CommitmentMsg

    phi = Commitment(
        b"\x21" * 32, view, None, None, Phase.COMMIT,
        tuple(fake_sig(i) for i in range(replica.quorum)),
    )
    height = replica.ledger.height()
    replica.dispatch(leader, CommitmentMsg(phi, KIND_DECIDE))
    assert replica.ledger.height() == height


# -- Damysus-A -------------------------------------------------------------------


def test_damysus_a_rejects_unfinalized_accumulator():
    system = running("damysus-a")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    working = Accumulator(view, 0, replica.store.genesis.hash, fake_sig(),
                          ids=tuple(range(replica.quorum)))
    voted_before = set(replica._voted)
    replica.dispatch(leader, ProposalAMsg(view, block, working, fake_sig()))
    assert replica._voted == voted_before


def test_damysus_a_rejects_replica_signed_accumulator():
    """The accumulator certificate must come from a TEE identity."""
    system = running("damysus-a")
    replica = system.replicas[0]
    view = replica.view
    leader = replica.leader_of(view)
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    unsigned = Accumulator(view, 0, replica.store.genesis.hash,
                           Signature(0, b"", "hmac"), count=replica.quorum)
    # Signed correctly over the payload, but with replica 0's key.
    sig = replica.scheme.sign(0, unsigned.signed_payload())
    forged = Accumulator(view, 0, replica.store.genesis.hash, sig,
                         count=replica.quorum)
    voted_before = set(replica._voted)
    replica.dispatch(leader, ProposalAMsg(view, block, forged, fake_sig()))
    assert replica._voted == voted_before


def test_damysus_a_leader_skips_reports_with_bad_signatures():
    system = running("damysus-a")
    leader = next(r for r in system.replicas if r.is_leader(r.view))
    view = leader.view
    bottom = genesis_qc(leader.store.genesis.hash)
    count_before = leader._new_views.count(view)
    # A report with a junk sender signature still lands in the collector
    # (dedup happens before expensive verification)...
    forged = NewViewAMsg(view, bottom, fake_sig(signer=99))
    leader.dispatch(99, forged)
    # ...but the accumulator refuses it during accumulation, so no
    # proposal can be built from forged reports alone.
    assert leader._new_views.count(view) >= count_before


def test_damysus_a_proposal_from_wrong_sender_ignored():
    system = running("damysus-a")
    replica = system.replicas[0]
    view = replica.view
    wrong = (replica.leader_of(view) + 1) % replica.num_replicas
    block = create_leaf(replica.store.genesis.hash, view, (tx(),))
    acc = Accumulator(view, 0, replica.store.genesis.hash, fake_sig(),
                      count=replica.quorum)
    voted_before = set(replica._voted)
    replica.dispatch(wrong, ProposalAMsg(view, block, acc, fake_sig()))
    assert replica._voted == voted_before
