"""Tests for the BaseReplica plumbing: buffering, staleness, charging."""


from repro.core.mempool import Transaction
from repro.core.messages import ClientRequest
from repro.costs import CostModel
from repro.protocols.system import ConsensusSystem
from tests.conftest import small_config


def build(protocol="damysus", **overrides):
    system = ConsensusSystem(small_config(protocol, **overrides))
    return system


def test_future_view_messages_are_buffered_and_replayed():
    system = build()
    system.start()
    replica = system.replicas[2]
    # Fabricate a payload for a future view.
    class FutureMsg:
        view = 7
        msg_type = "future"

        def wire_size(self):
            return 10

    seen = []
    replica.dispatch = lambda sender, payload: seen.append(payload)  # type: ignore
    replica.on_message(0, FutureMsg())
    assert seen == []  # buffered, not dispatched
    replica.advance_view(7)
    assert len(seen) == 1  # replayed on entry


def test_stale_messages_are_dropped_via_hook():
    system = build()
    system.start()
    replica = system.replicas[2]

    class OldMsg:
        view = 0
        msg_type = "old"

        def wire_size(self):
            return 10

    dispatched, stale = [], []
    replica.dispatch = lambda s, p: dispatched.append(p)  # type: ignore
    replica.on_stale = lambda s, p: stale.append(p)  # type: ignore
    replica.advance_view(5)
    replica.on_message(0, OldMsg())
    assert dispatched == []
    assert len(stale) == 1


def test_buffer_capacity_is_bounded():
    from repro.protocols.replica import MAX_BUFFERED_MESSAGES

    system = build()
    replica = system.replicas[0]

    class Future:
        view = 99
        msg_type = "flood"

        def wire_size(self):
            return 10

    for _ in range(MAX_BUFFERED_MESSAGES + 100):
        replica.on_message(1, Future())
    assert replica._buffered_count <= MAX_BUFFERED_MESSAGES


def test_advance_view_is_monotone():
    system = build()
    replica = system.replicas[0]
    replica.advance_view(5)
    replica.advance_view(3)  # ignored
    assert replica.view == 5


def test_client_requests_feed_the_mempool():
    system = build()
    replica = system.replicas[0]
    request = ClientRequest(4, Transaction(4, 1, 16))
    replica.on_message(99, request)
    assert replica.mempool.pending() == 1


def test_leader_schedule_round_robin():
    system = build(f=1)
    replica = system.replicas[0]
    assert [replica.leader_of(v) for v in range(6)] == [0, 1, 2, 0, 1, 2]
    assert replica.is_leader(0) and not replica.is_leader(1)


def test_cpu_charges_accumulate_with_real_cost_model():
    config = small_config("damysus", costs=CostModel())
    system = ConsensusSystem(config)
    system.run_until_views(3, max_time_ms=60_000)
    assert all(r.cpu_time_charged > 0 for r in system.replicas)
    # The leader rotates every view, so no replica should have charged
    # wildly more than the others in a fault-free run.
    charges = sorted(r.cpu_time_charged for r in system.replicas)
    assert charges[-1] < charges[0] * 10


def test_crashed_replica_ignores_everything():
    system = build()
    system.start()
    replica = system.replicas[2]
    replica.crash()
    view_before = replica.view

    class Msg:
        view = view_before
        msg_type = "x"

        def wire_size(self):
            return 10

    assert replica.on_message(0, Msg()) == []
    assert replica.view == view_before
