"""Property-based round-trips for the wire codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.scheme import Signature
from repro.core.certificate import Accumulator, QuorumCert
from repro.core.codec import decode_message, encode_message
from repro.core.commitment import Commitment
from repro.core.mempool import Transaction
from repro.core.messages import CommitmentMsg, NewViewMsg, QCMsg, VoteMsg
from repro.core.phases import Phase

hashes = st.binary(min_size=32, max_size=32)
views = st.integers(min_value=0, max_value=2**40)
phases = st.sampled_from(list(Phase))

signatures = st.builds(
    Signature,
    signer=st.integers(min_value=-(2**40), max_value=2**40),
    data=st.binary(max_size=96),
    scheme=st.sampled_from(["hmac", "schnorr"]),
)

sig_tuples = st.lists(signatures, max_size=5).map(tuple)

commitments = st.builds(
    Commitment,
    h_prep=st.one_of(st.none(), hashes),
    v_prep=views,
    h_just=st.one_of(st.none(), hashes),
    v_just=st.one_of(st.none(), views),
    phase=phases,
    sigs=sig_tuples,
)

qcs = st.builds(
    QuorumCert,
    view=views,
    block_hash=hashes,
    phase=phases,
    sigs=sig_tuples,
    is_genesis=st.booleans(),
)


@given(commitments, st.text(max_size=24))
@settings(max_examples=150)
def test_commitment_msg_roundtrip(phi, kind):
    msg = CommitmentMsg(phi, kind)
    assert decode_message(encode_message(msg)) == msg


@given(qcs, views, phases)
@settings(max_examples=150)
def test_qc_msg_roundtrip(qc, view, phase):
    msg = QCMsg(view, phase, qc)
    assert decode_message(encode_message(msg)) == msg


@given(qcs, views)
@settings(max_examples=100)
def test_new_view_roundtrip(qc, view):
    msg = NewViewMsg(view, qc)
    assert decode_message(encode_message(msg)) == msg


@given(views, phases, hashes, signatures)
@settings(max_examples=100)
def test_vote_roundtrip(view, phase, block_hash, sig):
    msg = VoteMsg(view, phase, block_hash, sig)
    assert decode_message(encode_message(msg)) == msg


@given(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=0, max_value=512),
)
@settings(max_examples=100)
def test_transaction_fields_roundtrip(client_id, tx_id, payload_bytes):
    from repro.core.messages import ClientRequest

    tx = Transaction(client_id, tx_id, payload_bytes, submitted_at=0.5)
    msg = ClientRequest(client_id, tx)
    assert decode_message(encode_message(msg)) == msg


@given(
    views, views, hashes, signatures,
    st.one_of(
        st.tuples(st.just("ids"), st.lists(st.integers(min_value=0, max_value=2**40), max_size=6)),
        st.tuples(st.just("count"), st.integers(min_value=0, max_value=200)),
    ),
)
@settings(max_examples=100)
def test_accumulator_roundtrip(made_in, prep_view, prep_hash, sig, form):
    from repro.core.messages import ProposalAMsg
    from repro.core.block import create_leaf, genesis_block

    kind, value = form
    if kind == "ids":
        acc = Accumulator(made_in, prep_view, prep_hash, sig, ids=tuple(value))
    else:
        acc = Accumulator(made_in, prep_view, prep_hash, sig, count=value)
    block = create_leaf(genesis_block().hash, 1, ())
    msg = ProposalAMsg(1, block, acc, sig)
    assert decode_message(encode_message(msg)) == msg
