"""Property-based tests on the trusted components' core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import genesis_block
from repro.core.commitment import c_combine
from repro.core.phases import Phase
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import Checker


def build_env(n=4, quorum=2):
    scheme = HmacScheme(secret=b"props")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [Checker(p, scheme, directory, genesis.hash, quorum) for p in range(n)]
    service = AccumulatorService(0, scheme, directory, quorum)
    return scheme, checkers, service, genesis


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=30)
def test_checker_never_repeats_a_stamp(n_calls):
    _, checkers, _, _ = build_env()
    checker = checkers[0]
    stamps = set()
    for _ in range(n_calls):
        phi = checker.tee_sign()
        stamp = (phi.v_prep, phi.phase)
        assert stamp not in stamps
        stamps.add(stamp)


@given(st.lists(st.sampled_from(["sign", "prepare", "store"]), min_size=1, max_size=25))
@settings(max_examples=60)
def test_checker_step_monotone_under_arbitrary_call_sequences(calls):
    """Whatever a (Byzantine) host calls, the step only moves forward."""
    scheme, checkers, service, genesis = build_env()
    checker = checkers[0]
    rule = checker.step_rule
    # Pre-build one valid accumulator and one valid prepare quorum so the
    # prepare/store calls sometimes succeed.
    nv0 = _nv(checkers[1], 1)
    nv1 = _nv(checkers[2], 1)
    acc = service.accumulate([nv0, nv1])
    phi1 = checkers[1].tee_prepare(b"\x0a" * 32, acc)
    phi2 = checkers[2].tee_prepare(b"\x0a" * 32, acc)
    quorum_phi = c_combine([phi1, phi2])

    last = checker.step.index(rule)
    for call in calls:
        try:
            if call == "sign":
                checker.tee_sign()
            elif call == "prepare":
                checker.tee_prepare(b"\x0a" * 32, acc)
            else:
                checker.tee_store(quorum_phi)
        except TEERefusal:
            pass
        current = checker.step.index(rule)
        assert current >= last
        last = current


def _nv(checker, view):
    while True:
        phi = checker.tee_sign()
        if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
            return phi


@given(st.permutations([0, 1, 2]))
@settings(max_examples=20)
def test_accumulator_result_independent_of_report_order(order):
    """accumList certifies the same (view, hash) whatever the input order."""
    scheme, checkers, service, genesis = build_env(quorum=3)
    nvs = [_nv(checkers[p], 1) for p in range(3)]
    acc = service.accumulate([nvs[i] for i in order])
    assert acc.prep_hash == genesis.hash
    assert acc.prep_view == 0
    assert acc.made_in_view == 1
    assert acc.count == 3
