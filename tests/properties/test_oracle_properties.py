"""Property-based tests for the safety oracle.

The oracle must flag a violation exactly when two replicas' executed
sequences are not prefix-compatible - no false positives on prefixes,
no misses on forks, regardless of interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import SafetyOracle


@st.composite
def interleavings(draw):
    """Random canonical chain + per-replica prefix lengths + interleaving."""
    chain_len = draw(st.integers(min_value=1, max_value=10))
    chain = [bytes([i]) * 4 for i in range(chain_len)]
    replicas = draw(st.integers(min_value=1, max_value=4))
    prefixes = [
        draw(st.integers(min_value=0, max_value=chain_len)) for _ in range(replicas)
    ]
    # Events: (replica, index) in per-replica order, globally shuffled.
    events = [(r, i) for r, p in enumerate(prefixes) for i in range(p)]
    events = draw(st.permutations(events))
    # Stable-sort per replica so each replica's records stay in order.
    ordered: list[tuple[int, int]] = []
    progress = [0] * replicas
    for replica, _ in events:
        ordered.append((replica, progress[replica]))
        progress[replica] += 1
    return chain, ordered


@given(interleavings())
@settings(max_examples=200)
def test_prefix_compatible_interleavings_are_safe(case):
    chain, events = case
    oracle = SafetyOracle(strict=False)
    for replica, index in events:
        oracle.record(replica, chain[index])
    assert oracle.safe
    canonical = oracle.canonical_chain()
    assert canonical == chain[: len(canonical)]


@given(
    interleavings(),
    st.integers(min_value=0, max_value=9),
)
@settings(max_examples=200)
def test_any_fork_is_detected(case, fork_at):
    chain, events = case
    oracle = SafetyOracle(strict=False)
    for replica, index in events:
        oracle.record(replica, chain[index])
    # A fresh replica re-executes the prefix then diverges.
    depth = min(fork_at, len(oracle.canonical_chain()))
    for i in range(depth):
        oracle.record(99, chain[i])
    if depth < len(oracle.canonical_chain()):
        oracle.record(99, b"\xff\xff\xff\xff")  # conflicting block
        assert not oracle.safe
        assert oracle.violations[-1].index == depth
    else:
        oracle.record(99, b"\xff\xff\xff\xff")  # extends the canonical head
        assert oracle.safe


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=30)
def test_single_replica_never_violates(n):
    oracle = SafetyOracle(strict=False)
    for i in range(n):
        oracle.record(0, bytes([i]))
    assert oracle.safe
    assert len(oracle.sequences[0]) == n
