"""Property-based tests on core data-structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import create_leaf
from repro.core.chain import BlockStore
from repro.core.mempool import Transaction
from repro.core.phases import StepRule, initial_step
from repro.protocols.replica import QuorumCollector


# -- step arithmetic -----------------------------------------------------------

@given(st.sampled_from(list(StepRule)), st.integers(min_value=0, max_value=200))
@settings(max_examples=100)
def test_step_index_is_strictly_monotone(rule, n):
    step = initial_step(rule)
    last = step.index(rule)
    for _ in range(n % 30):
        step = step.increment(rule)
        current = step.index(rule)
        assert current == last + 1
        last = current


@given(st.sampled_from(list(StepRule)))
def test_view_increases_by_one_per_cycle(rule):
    step = initial_step(rule)
    start_view = step.view
    cycle_lengths = {StepRule.BASIC: 3, StepRule.CHAINED: 2, StepRule.THREE_PHASE: 4}
    for _ in range(cycle_lengths[rule]):
        step = step.increment(rule)
    assert step.view == start_view + 1
    assert step.phase == initial_step(rule).phase


# -- block store ancestry ---------------------------------------------------------

@st.composite
def block_trees(draw):
    """A random tree of blocks over genesis: list of (parent_index) links."""
    size = draw(st.integers(min_value=1, max_value=12))
    parents = [draw(st.integers(min_value=-1, max_value=i - 1)) for i in range(size)]
    return parents


@given(block_trees())
@settings(max_examples=150)
def test_ancestry_is_transitive_and_antisymmetric(parents):
    store = BlockStore()
    blocks = []
    for i, parent_idx in enumerate(parents):
        parent_hash = store.genesis.hash if parent_idx < 0 else blocks[parent_idx].hash
        block = create_leaf(parent_hash, i + 1, (Transaction(0, i, 0),))
        store.add(block)
        blocks.append(block)
    for a in blocks:
        assert store.is_ancestor(store.genesis.hash, a.hash)  # rooted
        for b in blocks:
            fwd = store.is_strict_ancestor(a.hash, b.hash)
            bwd = store.is_strict_ancestor(b.hash, a.hash)
            assert not (fwd and bwd)  # antisymmetry
            if fwd:
                # Transitivity through the parent link.
                path = store.path_between(a.hash, b.hash)
                assert path[-1].hash == b.hash
                assert all(
                    path[i + 1].parent_hash == path[i].hash for i in range(len(path) - 1)
                )


@given(block_trees())
@settings(max_examples=100)
def test_conflicts_iff_neither_descends(parents):
    store = BlockStore()
    blocks = []
    for i, parent_idx in enumerate(parents):
        parent_hash = store.genesis.hash if parent_idx < 0 else blocks[parent_idx].hash
        block = create_leaf(parent_hash, i + 1, (Transaction(0, i, 0),))
        store.add(block)
        blocks.append(block)
    for a in blocks:
        for b in blocks:
            expected = (
                a.hash != b.hash
                and not store.is_ancestor(a.hash, b.hash)
                and not store.is_ancestor(b.hash, a.hash)
            )
            assert store.conflicts(a.hash, b.hash) == expected


# -- quorum collector ----------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=0, max_value=15), min_size=0, max_size=40),
)
@settings(max_examples=200)
def test_collector_fires_once_iff_enough_distinct(threshold, contributors):
    collector = QuorumCollector(threshold)
    fired = []
    for i, contributor in enumerate(contributors):
        result = collector.add("key", f"item{i}", contributor)
        if result is not None:
            fired.append(result)
    distinct = len(set(contributors))
    if distinct >= threshold:
        assert len(fired) == 1
        assert len(fired[0]) == threshold
    else:
        assert fired == []
