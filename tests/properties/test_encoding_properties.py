"""Property-based tests for the canonical field encoding.

The encoding underpins every signature in the system: if two distinct
field tuples could encode to the same bytes, a signature over one would
validate the other.  Hypothesis searches for collisions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import encode_fields

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.binary(max_size=40),
    st.text(max_size=20),
)
field_value = st.one_of(scalar, st.lists(scalar, max_size=4).map(tuple))
field_tuples = st.lists(field_value, max_size=6).map(tuple)


@given(field_tuples, field_tuples)
@settings(max_examples=300)
def test_encoding_is_injective(a, b):
    if a != b:
        assert encode_fields(a) != encode_fields(b)


@given(field_tuples)
@settings(max_examples=100)
def test_encoding_is_deterministic(fields):
    assert encode_fields(fields) == encode_fields(fields)


@given(field_tuples)
@settings(max_examples=100)
def test_encoding_never_empty(fields):
    assert len(encode_fields(fields)) >= 5  # tag + length prefix


@given(st.lists(scalar, min_size=1, max_size=5))
@settings(max_examples=100)
def test_list_and_tuple_encode_identically(values):
    assert encode_fields(values) == encode_fields(tuple(values))
