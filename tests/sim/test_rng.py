"""Tests for seeded named RNG streams."""

from repro.sim.rng import RngFactory, RngStream, derive_seed


def test_same_seed_same_name_same_draws():
    a = RngStream(1, "x")
    b = RngStream(1, "x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    a = RngStream(1, "x")
    b = RngStream(1, "y")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngStream(1, "x")
    b = RngStream(2, "x")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_derive_seed_is_stable():
    assert derive_seed(7, "latency") == derive_seed(7, "latency")
    assert derive_seed(7, "latency") != derive_seed(7, "latency2")


def test_derive_seed_distinct_for_distinct_names():
    seeds = {derive_seed(7, name) for name in ("a", "b", "latency:0->1", "latency:1->0", "clients")}
    assert len(seeds) == 5


def test_derive_seed_identical_for_identical_inputs():
    for seed, name in [(0, "x"), (2**63, "x"), (7, "latency:3->7")]:
        assert derive_seed(seed, name) == derive_seed(seed, name)


def test_interleaved_draws_do_not_interfere():
    # Drawing from one stream must not perturb another: a stream's n-th
    # draw is the same whether or not other streams were used in between.
    solo = RngStream(11, "net")
    expected = [solo.random() for _ in range(8)]

    net = RngStream(11, "net")
    clients = RngStream(11, "clients")
    crash = RngStream(11, "crash")
    observed = []
    for i in range(8):
        clients.random()
        observed.append(net.random())
        crash.randint(0, 100)
        if i % 2:
            clients.expovariate(1.0)
    assert observed == expected


def test_uniform_bounds():
    stream = RngStream(3, "u")
    for _ in range(100):
        value = stream.uniform(2.0, 5.0)
        assert 2.0 <= value <= 5.0


def test_jitter_bounds():
    stream = RngStream(3, "j")
    for _ in range(100):
        value = stream.jitter(100.0, 0.1)
        assert 90.0 <= value <= 110.0


def test_jitter_zero_fraction_identity():
    stream = RngStream(3, "j0")
    assert stream.jitter(42.0, 0.0) == 42.0


def test_jitter_never_negative():
    stream = RngStream(3, "jneg")
    for _ in range(100):
        assert stream.jitter(0.001, 5.0) >= 0.0


def test_randint_bounds():
    stream = RngStream(4, "i")
    values = {stream.randint(1, 3) for _ in range(100)}
    assert values <= {1, 2, 3}
    assert len(values) == 3


def test_factory_streams_reproducible():
    f1 = RngFactory(9)
    f2 = RngFactory(9)
    assert f1.stream("a").random() == f2.stream("a").random()


def test_shuffle_and_choice():
    stream = RngStream(5, "s")
    items = list(range(20))
    shuffled = list(items)
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert stream.choice(items) in items


def test_expovariate_positive():
    stream = RngStream(6, "e")
    for _ in range(50):
        assert stream.expovariate(2.0) >= 0.0
