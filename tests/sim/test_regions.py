"""Tests for the region data sets."""

import pytest

from repro.errors import ConfigError
from repro.sim.regions import EU_REGIONS, LOCAL_REGION, WORLD_REGIONS, RegionMap


def test_eu_has_four_regions():
    assert EU_REGIONS.num_regions == 4
    assert "eu-west-1" in EU_REGIONS.region_names


def test_world_has_eleven_regions():
    # 4 US + 4 EU + Singapore + Sydney + Canada (paper Section 8).
    assert WORLD_REGIONS.num_regions == 11
    us = [r for r in WORLD_REGIONS.region_names if r.startswith("us-")]
    eu = [r for r in WORLD_REGIONS.region_names if r.startswith("eu-")]
    assert len(us) == 4
    assert len(eu) == 4
    assert "ap-southeast-1" in WORLD_REGIONS.region_names
    assert "ca-central-1" in WORLD_REGIONS.region_names


def test_matrices_symmetric():
    for regions in (EU_REGIONS, WORLD_REGIONS, LOCAL_REGION):
        n = regions.num_regions
        for i in range(n):
            for j in range(n):
                assert regions.latency(i, j) == regions.latency(j, i)


def test_diagonal_smaller_than_off_diagonal():
    for regions in (EU_REGIONS, WORLD_REGIONS):
        n = regions.num_regions
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert regions.latency(i, i) < regions.latency(i, j)


def test_round_robin_assignment():
    placement = EU_REGIONS.assign_round_robin(10)
    assert placement == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_round_robin_balances_regions():
    placement = WORLD_REGIONS.assign_round_robin(33)
    counts = [placement.count(r) for r in range(11)]
    assert all(c == 3 for c in counts)


def test_asymmetric_matrix_rejected():
    with pytest.raises(ConfigError):
        RegionMap("bad", ("a", "b"), ((0.0, 1.0), (2.0, 0.0)))


def test_wrong_shape_rejected():
    with pytest.raises(ConfigError):
        RegionMap("bad", ("a", "b"), ((0.0, 1.0),))


def test_negative_latency_rejected():
    with pytest.raises(ConfigError):
        RegionMap("bad", ("a", "b"), ((0.0, -1.0), (-1.0, 0.0)))
