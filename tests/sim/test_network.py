"""Tests for the simulated network."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import SELF_DELIVERY_MS, Network, msg_type_of, wire_size_of
from repro.sim.process import Process


class Sink(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((self.sim.now, sender, payload))


class SizedPayload:
    msg_type = "sized"
    view = 3

    def wire_size(self):
        return 1000


def build(latency=2.0, n=2):
    sim = Simulator()
    net = Network(sim, ConstantLatency(latency))
    procs = [Sink(i, sim) for i in range(n)]
    for p in procs:
        net.add_process(p)
    return sim, net, procs


def test_duplicate_pid_rejected():
    sim, net, procs = build()
    with pytest.raises(SimulationError):
        net.add_process(Sink(0, sim))


def test_unknown_destination_rejected():
    sim, net, procs = build()
    with pytest.raises(SimulationError):
        net.send(0, 99, "x")


def test_self_send_uses_loopback_delay():
    sim, net, procs = build(latency=50.0)
    net.send(0, 0, "self")
    sim.run()
    assert procs[0].received[0][0] == pytest.approx(SELF_DELIVERY_MS)


def test_monitor_counts_messages_and_bytes():
    sim, net, procs = build()
    net.send(0, 1, SizedPayload())
    net.send(0, 0, SizedPayload())  # self-messages are counted too
    sim.run()
    assert net.monitor.messages_sent == 2
    assert net.monitor.bytes_sent == 2000
    assert net.monitor.messages_by_type["sized"] == 2
    assert net.monitor.view_message_counts[3] == 2


def test_tap_sees_all_sends():
    sim, net, procs = build()
    seen = []
    net.add_tap(lambda src, dst, payload: seen.append((src, dst, payload)))
    net.send(0, 1, "a")
    net.send(1, 0, "b")
    assert seen == [(0, 1, "a"), (1, 0, "b")]


def test_drop_filter_suppresses_delivery_but_counts_send():
    sim, net, procs = build()
    net.drop_filter = lambda src, dst, payload: dst == 1
    net.send(0, 1, "dropped")
    net.send(1, 0, "kept")
    sim.run()
    assert procs[1].received == []
    assert len(procs[0].received) == 1
    assert net.monitor.messages_sent == 2


def test_wire_size_fallback_for_plain_payloads():
    assert wire_size_of("hello") == 64
    assert wire_size_of(SizedPayload()) == 1000


def test_msg_type_of_fallback():
    assert msg_type_of("hello") == "str"
    assert msg_type_of(SizedPayload()) == "sized"


def test_bandwidth_affects_delay():
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0, bandwidth=100.0))
    a, b = Sink(0, sim), Sink(1, sim)
    net.add_process(a)
    net.add_process(b)
    net.send(0, 1, SizedPayload())  # 1000 bytes / 100 B-per-ms = 10 ms
    sim.run()
    assert b.received[0][0] == pytest.approx(11.0)
