"""Tests for latency models, including partial synchrony."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import (
    ConstantLatency,
    MatrixLatency,
    PartialSynchronyLatency,
)
from repro.sim.regions import EU_REGIONS, WORLD_REGIONS
from repro.sim.rng import RngStream


def test_constant_latency():
    model = ConstantLatency(7.0)
    assert model.delay(0, 1, 100, now=0.0) == 7.0


def test_constant_latency_with_bandwidth():
    model = ConstantLatency(1.0, bandwidth=50.0)
    assert model.delay(0, 1, 100, 0.0) == pytest.approx(3.0)


def test_constant_negative_rejected():
    with pytest.raises(ConfigError):
        ConstantLatency(-1.0)


def make_matrix(jitter=0.0, bandwidth=0.0):
    placement = EU_REGIONS.assign_round_robin(8)
    return MatrixLatency(
        EU_REGIONS, placement, RngStream(1, "lat"), bandwidth=bandwidth, jitter=jitter
    )


def test_matrix_latency_uses_region_matrix():
    model = make_matrix()
    # Nodes 0 and 4 are both in region 0 (round robin over 4 regions).
    assert model.delay(0, 4, 0, 0.0) == EU_REGIONS.latency(0, 0)
    # Node 0 in region 0, node 1 in region 1.
    assert model.delay(0, 1, 0, 0.0) == EU_REGIONS.latency(0, 1)


def test_matrix_latency_jitter_bounded():
    model = make_matrix(jitter=0.05)
    base = EU_REGIONS.latency(0, 1)
    for _ in range(100):
        delay = model.delay(0, 1, 0, 0.0)
        assert base * 0.95 <= delay <= base * 1.05


def test_matrix_latency_bandwidth_term():
    model = make_matrix(bandwidth=1000.0)
    base = EU_REGIONS.latency(0, 1)
    assert model.delay(0, 1, 5000, 0.0) == pytest.approx(base + 5.0)


def test_matrix_invalid_placement_rejected():
    with pytest.raises(ConfigError):
        MatrixLatency(EU_REGIONS, [0, 99], RngStream(1, "x"))


def make_ps(gst=100.0, delta=20.0, extra=50.0):
    return PartialSynchronyLatency(
        ConstantLatency(5.0), RngStream(2, "ps"), gst=gst, delta_ms=delta,
        max_extra_ms=extra,
    )


def test_partial_synchrony_after_gst_bounded_by_delta():
    model = make_ps(gst=100.0, delta=20.0)
    for now in (100.0, 200.0, 1e6):
        assert model.delay(0, 1, 0, now) <= 20.0


def test_partial_synchrony_before_gst_can_exceed_base():
    model = make_ps(gst=1000.0, delta=20.0, extra=500.0)
    delays = [model.delay(0, 1, 0, now=0.0) for _ in range(50)]
    assert max(delays) > 5.0  # chaos actually happens


def test_partial_synchrony_pre_gst_messages_arrive_by_gst_plus_delta():
    model = make_ps(gst=100.0, delta=20.0, extra=10_000.0)
    for now in (0.0, 50.0, 99.0):
        delay = model.delay(0, 1, 0, now)
        assert now + delay <= 100.0 + 20.0


def test_partial_synchrony_invalid_delta():
    with pytest.raises(ConfigError):
        make_ps(delta=0.0)


def test_world_matrix_has_long_haul_links():
    # Sydney <-> Frankfurt must be much slower than intra-EU.
    syd = WORLD_REGIONS.region_names.index("ap-southeast-2")
    fra = WORLD_REGIONS.region_names.index("eu-central-1")
    irl = WORLD_REGIONS.region_names.index("eu-west-1")
    ldn = WORLD_REGIONS.region_names.index("eu-west-2")
    assert WORLD_REGIONS.latency(syd, fra) > 10 * WORLD_REGIONS.latency(irl, ldn)
