"""Tests for TCP-like per-link FIFO ordering."""

import pytest

from repro.protocols.registry import PROTOCOL_ORDER
from repro.sim.events import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.process import Process
from tests.conftest import run_protocol


class Recorder(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append(payload)


class ShrinkingLatency(LatencyModel):
    """Later messages get lower latency: reorders without FIFO."""

    def __init__(self):
        self.calls = 0

    def delay(self, src, dst, size_bytes, now):
        self.calls += 1
        return max(0.5, 10.0 - self.calls * 3.0)


def build(fifo):
    sim = Simulator()
    net = Network(sim, ShrinkingLatency(), fifo=fifo)
    a, b = Recorder(0, sim), Recorder(1, sim)
    net.add_process(a)
    net.add_process(b)
    return sim, a, b


def test_without_fifo_messages_can_overtake():
    sim, a, b = build(fifo=False)
    for i in range(3):
        a.send(1, i)
    sim.run()
    assert b.received != [0, 1, 2]


def test_with_fifo_order_is_preserved():
    sim, a, b = build(fifo=True)
    for i in range(3):
        a.send(1, i)
    sim.run()
    assert b.received == [0, 1, 2]


def test_fifo_is_per_link():
    sim = Simulator()
    net = Network(sim, ShrinkingLatency(), fifo=True)
    a, b, c = Recorder(0, sim), Recorder(1, sim), Recorder(2, sim)
    for p in (a, b, c):
        net.add_process(p)
    a.send(1, "to-b")
    a.send(2, "to-c")  # different link: may arrive before/after freely
    sim.run()
    assert b.received == ["to-b"]
    assert c.received == ["to-c"]


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_protocols_correct_under_fifo_links(protocol):
    _, result = run_protocol(protocol, views=4, fifo_links=True)
    assert result.safe
    assert result.committed_blocks >= 4
