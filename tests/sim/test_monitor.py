"""Tests for the measurement monitor."""

import pytest

from repro.sim.monitor import ExecutionRecord, Monitor


def record(replica=0, view=1, block=b"b1", txs=10, proposed=0.0, executed=50.0):
    return ExecutionRecord(
        replica=replica,
        view=view,
        block_hash=block,
        num_transactions=txs,
        proposed_at=proposed,
        executed_at=executed,
    )


def test_latency_of_record():
    assert record(proposed=10.0, executed=35.0).latency_ms == 25.0


def test_throughput_counts_each_block_once():
    monitor = Monitor()
    for replica in range(4):  # same block executed at 4 replicas
        monitor.record_execution(record(replica=replica, block=b"x", txs=100))
    monitor.record_execution(record(replica=0, view=2, block=b"y", txs=100))
    # 200 txs over 1 second = 0.2 Kops.
    assert monitor.throughput_kops(1000.0) == pytest.approx(0.2)


def test_throughput_zero_duration():
    assert Monitor().throughput_kops(0.0) == 0.0


def test_mean_latency():
    monitor = Monitor()
    monitor.record_execution(record(proposed=0.0, executed=10.0))
    monitor.record_execution(record(view=2, block=b"y", proposed=0.0, executed=30.0))
    assert monitor.mean_latency_ms() == pytest.approx(20.0)


def test_mean_latency_empty():
    assert Monitor().mean_latency_ms() == 0.0


def test_committed_views():
    monitor = Monitor()
    monitor.record_execution(record(view=1))
    monitor.record_execution(record(view=3, block=b"z"))
    assert monitor.committed_views() == {1, 3}


def test_latency_percentiles():
    monitor = Monitor()
    for i in range(100):
        monitor.record_execution(
            record(view=i, block=bytes([i]), proposed=0.0, executed=float(i + 1))
        )
    assert monitor.latency_percentile_ms(0) == 1.0
    assert monitor.latency_percentile_ms(100) == 100.0
    assert 49.0 <= monitor.latency_percentile_ms(50) <= 52.0
    assert monitor.latency_percentile_ms(99) >= 98.0


def test_latency_percentile_validation_and_empty():
    monitor = Monitor()
    assert monitor.latency_percentile_ms(50) == 0.0
    import pytest as _pytest

    with _pytest.raises(ValueError):
        monitor.latency_percentile_ms(101)


def test_latency_stddev():
    monitor = Monitor()
    assert monitor.latency_stddev_ms() == 0.0
    monitor.record_execution(record(proposed=0.0, executed=10.0))
    assert monitor.latency_stddev_ms() == 0.0  # single sample
    monitor.record_execution(record(view=2, block=b"y", proposed=0.0, executed=30.0))
    assert monitor.latency_stddev_ms() == pytest.approx(10.0)


def test_record_send_accounting():
    monitor = Monitor()
    monitor.record_send("vote", 100, view=2)
    monitor.record_send("vote", 100, view=2)
    monitor.record_send("proposal", 5000, view=2)
    assert monitor.messages_sent == 3
    assert monitor.bytes_sent == 5200
    assert monitor.messages_by_type["vote"] == 2
    assert monitor.bytes_by_type["proposal"] == 5000
    assert monitor.messages_per_view(2) == 3
    assert monitor.messages_per_view(9) == 0
