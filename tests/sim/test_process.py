"""Tests for processes, timers and CPU-time accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.process import Process, Timer


class Recorder(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((self.sim.now, sender, payload))


def make_pair(latency_ms=1.0):
    sim = Simulator()
    net = Network(sim, ConstantLatency(latency_ms))
    a, b = Recorder(0, sim), Recorder(1, sim)
    net.add_process(a)
    net.add_process(b)
    return sim, net, a, b


def test_send_delivers_with_latency():
    sim, _, a, b = make_pair(latency_ms=3.0)
    a.send(1, "hello")
    sim.run()
    assert b.received == [(3.0, 0, "hello")]


def test_send_without_network_raises():
    sim = Simulator()
    orphan = Recorder(9, sim)
    with pytest.raises(SimulationError):
        orphan.send(0, "x")


def test_crashed_process_does_not_send():
    sim, _, a, b = make_pair()
    a.crash()
    a.send(1, "x")
    sim.run()
    assert b.received == []


def test_crashed_process_ignores_deliveries():
    sim, _, a, b = make_pair()
    b.crash()
    a.send(1, "x")
    sim.run()
    assert b.received == []


def test_broadcast_excludes_self_by_default():
    sim, net, a, b = make_pair()
    c = Recorder(2, sim)
    net.add_process(c)
    a.broadcast([0, 1, 2], "m")
    sim.run()
    assert a.received == []
    assert len(b.received) == 1
    assert len(c.received) == 1


def test_broadcast_include_self():
    sim, _, a, b = make_pair()
    a.broadcast([0, 1], "m", include_self=True)
    sim.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_timer_fires():
    sim = Simulator()
    fired = []
    Timer(sim, 5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 5.0, lambda: fired.append(1))
    assert timer.active
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_charge_delays_send():
    sim, _, a, b = make_pair(latency_ms=1.0)
    a.charge(10.0)
    a.send(1, "after-busy")
    sim.run()
    # Handed to the network at t=10, arrives at t=11.
    assert b.received[0][0] == pytest.approx(11.0)


def test_charge_delays_message_handling():
    sim, _, a, b = make_pair(latency_ms=1.0)
    a.send(1, "m")
    b.charge(20.0)
    sim.run()
    # Arrives at t=1 but the receiver's CPU is busy until t=20.
    assert b.received[0][0] == pytest.approx(20.0)


def test_charge_accumulates():
    sim = Simulator()
    p = Recorder(0, sim)
    p.charge(3.0)
    p.charge(4.0)
    assert p.busy_until == pytest.approx(7.0)
    assert p.cpu_time_charged == pytest.approx(7.0)


def test_charge_nonpositive_is_noop():
    sim = Simulator()
    p = Recorder(0, sim)
    p.charge(0.0)
    p.charge(-5.0)
    assert p.busy_until == 0.0
