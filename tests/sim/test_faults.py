"""Tests for the fault-injection layer: rules, plans, network pipeline."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.faults import (
    DROP,
    CrashEvent,
    FaultAction,
    FaultPlan,
    LinkFaultRule,
    PartitionRule,
)
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rng import RngStream


class Sink(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((self.sim.now, sender, payload))


def build(n=3, latency=1.0):
    sim = Simulator()
    net = Network(sim, ConstantLatency(latency))
    procs = [Sink(i, sim) for i in range(n)]
    for p in procs:
        net.add_process(p)
    return sim, net, procs


def stream(name="faults", seed=1):
    return RngStream(seed, name)


# -- LinkFaultRule ------------------------------------------------------------


def test_lossy_rule_drops_some_but_not_all():
    rule = LinkFaultRule(drop_prob=0.5)
    rng = stream()
    decisions = [rule.decide(0, 1, "m", 0.0, rng) for _ in range(200)]
    dropped = sum(1 for d in decisions if d is DROP)
    assert 50 < dropped < 150  # ~100 expected; bounds are generous


def test_rule_draws_are_deterministic_per_seed():
    rule = LinkFaultRule(drop_prob=0.3, duplicate_prob=0.2)
    first = [rule.decide(0, 1, "m", 0.0, stream(seed=9)) for _ in range(100)]
    second = [rule.decide(0, 1, "m", 0.0, stream(seed=9)) for _ in range(100)]
    assert first == second


def test_self_sends_are_never_faulted():
    rule = LinkFaultRule(drop_prob=1.0)
    assert rule.decide(2, 2, "m", 0.0, stream()) is None


def test_rule_respects_time_window():
    rule = LinkFaultRule(drop_prob=1.0, start_ms=10.0, end_ms=20.0)
    rng = stream()
    assert rule.decide(0, 1, "m", 5.0, rng) is None
    assert rule.decide(0, 1, "m", 10.0, rng) is DROP
    assert rule.decide(0, 1, "m", 19.9, rng) is DROP
    assert rule.decide(0, 1, "m", 20.0, rng) is None


def test_rule_filters_by_src_dst_and_msg_type():
    class Payload:
        msg_type = "vote"

    rule = LinkFaultRule(
        drop_prob=1.0,
        src=frozenset({0}),
        dst=frozenset({1}),
        msg_types=frozenset({"vote"}),
    )
    rng = stream()
    assert rule.decide(0, 1, Payload(), 0.0, rng) is DROP
    assert rule.decide(2, 1, Payload(), 0.0, rng) is None  # wrong src
    assert rule.decide(0, 2, Payload(), 0.0, rng) is None  # wrong dst
    assert rule.decide(0, 1, "proposal", 0.0, rng) is None  # wrong type


# -- PartitionRule ------------------------------------------------------------


def test_partition_drops_cross_group_until_heal():
    rule = PartitionRule(
        groups=(frozenset({0}), frozenset({1, 2})), start_ms=0.0, heal_ms=100.0
    )
    rng = stream()
    assert rule.decide(0, 1, "m", 50.0, rng) is DROP
    assert rule.decide(1, 0, "m", 50.0, rng) is DROP
    assert rule.decide(1, 2, "m", 50.0, rng) is None  # same group
    assert rule.decide(0, 1, "m", 100.0, rng) is None  # healed


def test_one_way_partition_only_cuts_traffic_leaving_first_group():
    rule = PartitionRule(
        groups=(frozenset({0}), frozenset({1})), symmetric=False
    )
    rng = stream()
    assert rule.decide(0, 1, "m", 0.0, rng) is DROP
    assert rule.decide(1, 0, "m", 0.0, rng) is None


def test_partition_ignores_ungrouped_pids():
    rule = PartitionRule(groups=(frozenset({0}), frozenset({1})))
    rng = stream()
    assert rule.decide(0, 5, "m", 0.0, rng) is None
    assert rule.decide(5, 0, "m", 0.0, rng) is None


# -- FaultPlan ----------------------------------------------------------------


def test_crash_event_requires_recovery_after_crash():
    with pytest.raises(SimulationError):
        CrashEvent(0, at_ms=100.0, recover_at_ms=100.0)


def test_partition_builder_requires_two_groups():
    with pytest.raises(SimulationError):
        FaultPlan().partition({0, 1})


def test_healed_by_ms_ignores_permanent_crashes():
    plan = FaultPlan().lossy_links(0.1, end_ms=500.0).crash(0, at_ms=100.0)
    assert plan.healed_by_ms() == 500.0
    plan.crash(1, at_ms=100.0, recover_at_ms=900.0)
    assert plan.healed_by_ms() == 900.0


def test_healed_by_ms_is_inf_for_unbounded_loss():
    assert math.isinf(FaultPlan().lossy_links(0.1).healed_by_ms())


def test_install_with_crashes_requires_replicas():
    sim, net, procs = build()
    plan = FaultPlan().crash(0, at_ms=10.0)
    with pytest.raises(SimulationError):
        plan.install(net, stream())


def test_installed_crash_schedule_fires():
    sim, net, procs = build()
    plan = FaultPlan().crash(1, at_ms=10.0, recover_at_ms=30.0)
    plan.install(net, stream(), replicas=procs)
    sim.run(until=20.0)
    assert procs[1].crashed
    sim.run(until=40.0)
    assert not procs[1].crashed


# -- network pipeline ---------------------------------------------------------


def test_total_loss_drops_everything_and_counts_drops():
    sim, net, procs = build()
    FaultPlan().lossy_links(1.0).install(net, stream())
    for _ in range(5):
        net.send(0, 1, "m")
    sim.run()
    assert procs[1].received == []
    assert net.monitor.messages_dropped == 5
    assert net.monitor.dropped_by_type["str"] == 5
    assert net.monitor.messages_sent == 5  # sends still counted


def test_duplication_delivers_extra_copies_and_counts_them():
    sim, net, procs = build()
    FaultPlan().duplicating_links(1.0).install(net, stream())
    net.send(0, 1, "m")
    sim.run()
    assert len(procs[1].received) == 2
    assert net.monitor.messages_duplicated == 1
    assert net.monitor.duplicated_by_type["str"] == 1


def test_extra_delay_defers_and_can_reorder():
    sim, net, procs = build(latency=1.0)
    net.add_fault_filter(
        lambda src, dst, payload: FaultAction(extra_delay_ms=10.0)
        if payload == "slow"
        else None
    )
    net.send(0, 1, "slow")
    net.send(0, 1, "fast")
    sim.run()
    payloads = [p for _, _, p in procs[1].received]
    assert payloads == ["fast", "slow"]  # the delayed message was overtaken


def test_partition_blocks_then_heals_end_to_end():
    sim, net, procs = build(n=3)
    FaultPlan().partition({0}, {1, 2}, at_ms=0.0, heal_ms=50.0).install(
        net, stream()
    )
    net.send(0, 1, "before")
    sim.run(until=60.0)
    assert procs[1].received == []
    net.send(0, 1, "after")  # now past heal_ms
    sim.run()
    assert [p for _, _, p in procs[1].received] == ["after"]


def test_chaos_filter_merges_duplicate_and_delay_rules():
    sim, net, procs = build()
    plan = FaultPlan().duplicating_links(1.0).delaying_links(5.0, delay_prob=1.0)
    plan.install(net, stream())
    assert len(net.fault_filters) == 1  # one merged filter per plan
    net.send(0, 1, "m")
    sim.run()
    assert len(procs[1].received) == 2
    assert all(t > 1.0 for t, _, _ in procs[1].received)  # latency + extra


def test_identical_plans_and_seeds_replay_identically():
    def run_once():
        sim, net, procs = build()
        FaultPlan().lossy_links(0.4).duplicating_links(0.3).install(
            net, stream(seed=5)
        )
        for i in range(50):
            net.send(0, 1, f"m{i}")
        sim.run()
        return [(t, p) for t, _, p in procs[1].received]

    assert run_once() == run_once()


# -- legacy drop_filter compatibility ----------------------------------------


def test_legacy_drop_filter_is_a_pipeline_view():
    sim, net, procs = build()
    fn = lambda src, dst, payload: dst == 1  # noqa: E731
    net.drop_filter = fn
    assert net.drop_filter is fn
    assert net.fault_filters == [fn]
    replacement = lambda src, dst, payload: False  # noqa: E731
    net.drop_filter = replacement  # assignment replaces, never stacks
    assert net.fault_filters == [replacement]
    net.drop_filter = None
    assert net.fault_filters == []


def test_remove_fault_filter_is_idempotent_and_clears_legacy_slot():
    sim, net, procs = build()
    fn = lambda src, dst, payload: True  # noqa: E731
    net.drop_filter = fn
    net.remove_fault_filter(fn)
    net.remove_fault_filter(fn)
    assert net.drop_filter is None
    assert net.fault_filters == []
    net.send(0, 1, "m")
    sim.run()
    assert len(procs[1].received) == 1
