"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(9.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(3.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_nested_scheduling_from_callback():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0


def test_zero_delay_event_runs_after_already_scheduled_same_instant():
    sim = Simulator()
    order = []
    sim.schedule(0.0, lambda: order.append("first"))
    sim.schedule(0.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("early"))
    sim.schedule(50.0, lambda: fired.append("late"))
    sim.run(until=10.0)
    assert fired == ["early"]
    assert sim.now == 10.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_includes_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=10.0)
    assert fired == [1]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.1, forever)

    sim.schedule(0.1, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_fires_single_event():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    assert sim.step() is True
    assert order == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert order == ["a", "b"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_simulator_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_respects_max_events():
    """step() enforces max_events against the lifetime counter, like run()."""
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    assert sim.step(max_events=2) is True
    assert sim.step(max_events=2) is True
    with pytest.raises(SimulationError):
        sim.step(max_events=2)


def test_step_skips_cancelled_and_updates_counter():
    sim = Simulator()
    fired = []
    cancelled = sim.schedule(1.0, lambda: fired.append("dead"))
    sim.schedule(2.0, lambda: fired.append("live"))
    cancelled.cancel()
    assert sim.cancelled_pending == 1
    assert sim.step() is True
    assert fired == ["live"]
    assert sim.cancelled_pending == 0
    assert sim.events_processed == 1


def test_cancelled_pending_counter():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
    for event in events[:4]:
        event.cancel()
    assert sim.cancelled_pending == 4
    events[0].cancel()  # double-cancel must not double-count
    assert sim.cancelled_pending == 4
    sim.run()
    assert sim.cancelled_pending == 0
    assert sim.events_processed == 6


def test_heap_compacts_when_mostly_cancelled():
    """Cancelling the majority of a large heap shrinks it immediately."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    for event in events[:51]:
        event.cancel()
    assert sim.pending == 49
    assert sim.cancelled_pending == 0
    sim.run()
    assert sim.events_processed == 49


def test_small_heaps_skip_compaction():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
    # Below the compaction floor the cancelled entries stay until popped.
    assert sim.pending == 10
    assert sim.cancelled_pending == 9
    sim.run()
    assert sim.events_processed == 1
    assert sim.cancelled_pending == 0


def test_cancel_after_pop_does_not_skew_counter():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()  # already fired; must not touch the pending counter
    assert sim.cancelled_pending == 0


def test_compaction_preserves_event_order():
    sim = Simulator()
    order = []
    keep = []
    for i in range(200):
        event = sim.schedule(float(i + 1), lambda t=float(i + 1): order.append(t))
        if i % 2:
            keep.append(event)
        else:
            event.cancel()
    sim.run()
    assert order == sorted(order)
    assert sim.events_processed == 100


def test_wall_clock_counters():
    sim = Simulator()
    ticks = iter([0.0, 2.0])
    sim.attach_wall_clock(lambda: next(ticks))
    for i in range(4):
        sim.schedule(250.0 * (i + 1), lambda: None)
    sim.run()
    assert sim.wall_seconds == 2.0
    assert sim.events_per_wall_second == pytest.approx(2.0)
    # 1000 ms of virtual time took 2 wall seconds.
    assert sim.wall_seconds_per_sim_second == pytest.approx(2.0)


def test_counters_zero_without_wall_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.wall_seconds == 0.0
    assert sim.events_per_wall_second == 0.0
    assert sim.wall_seconds_per_sim_second == 0.0
