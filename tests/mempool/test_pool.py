"""The bounded priority mempool: verdicts, ordering, caps, determinism."""

from repro.core.codec import encode_message
from repro.core.mempool import AdmissionVerdict, Transaction
from repro.core.messages import ClientRequest
from repro.core.rng import RngStream
from repro.mempool.pool import PriorityMempool

ACCEPTED = AdmissionVerdict.ACCEPTED
DUPLICATE = AdmissionVerdict.DUPLICATE
POOL_FULL = AdmissionVerdict.POOL_FULL
RATE_LIMITED = AdmissionVerdict.RATE_LIMITED


def tx(client=0, tx_id=0, payload=16, fee=0):
    return Transaction(client_id=client, tx_id=tx_id, payload_bytes=payload, fee=fee)


def closed_pool(**kwargs):
    kwargs.setdefault("max_txs", 1000)
    return PriorityMempool(16, 4, open_loop=False, **kwargs)


# -- admission verdicts ------------------------------------------------------


def test_accepts_distinct_transactions():
    pool = closed_pool()
    assert pool.admit(tx(0, 1), 0.0) is ACCEPTED
    assert pool.admit(tx(0, 2), 0.0) is ACCEPTED
    assert pool.pending() == 2


def test_duplicate_pending_rejected():
    pool = closed_pool()
    assert pool.admit(tx(0, 1), 0.0) is ACCEPTED
    assert pool.admit(tx(0, 1), 0.0) is DUPLICATE
    assert pool.pending() == 1


def test_replay_of_drained_transaction_rejected():
    """A transaction that already made it into a block must not re-enter."""
    pool = closed_pool()
    pool.admit(tx(0, 1), 0.0)
    assert pool.take_block(1.0) == (tx(0, 1),)
    assert pool.admit(tx(0, 1), 2.0) is DUPLICATE


def test_same_tx_id_different_clients_are_distinct():
    pool = closed_pool()
    assert pool.admit(tx(0, 1), 0.0) is ACCEPTED
    assert pool.admit(tx(1, 1), 0.0) is ACCEPTED


def test_rate_limited_sender_nacked_and_recovers():
    pool = closed_pool(rate_limit_per_ms=1.0, rate_burst=2.0)
    assert pool.admit(tx(0, 1), 0.0) is ACCEPTED
    assert pool.admit(tx(0, 2), 0.0) is ACCEPTED
    assert pool.admit(tx(0, 3), 0.0) is RATE_LIMITED
    # The refused submission may be retried once the bucket refills.
    assert pool.admit(tx(0, 3), 1.0) is ACCEPTED


def test_rate_limited_rejection_is_not_a_replay():
    pool = closed_pool(rate_limit_per_ms=0.001, rate_burst=1.0)
    assert pool.admit(tx(0, 1), 0.0) is ACCEPTED
    assert pool.admit(tx(0, 2), 0.0) is RATE_LIMITED
    assert pool.admit(tx(0, 2), 10_000.0) is ACCEPTED  # not DUPLICATE


# -- capacity and eviction ---------------------------------------------------


def test_count_cap_evicts_lowest_fee():
    pool = closed_pool(max_txs=2)
    pool.admit(tx(0, 1, fee=5), 0.0)
    pool.admit(tx(0, 2, fee=1), 0.0)
    assert pool.admit(tx(0, 3, fee=9), 0.0) is ACCEPTED  # displaces fee=1
    assert pool.pending() == 2
    assert pool.evicted == 1
    drained = pool.take_block(1.0)
    assert [t.fee for t in drained] == [9, 5]


def test_incoming_lowest_fee_bounces_as_pool_full():
    pool = closed_pool(max_txs=2)
    pool.admit(tx(0, 1, fee=5), 0.0)
    pool.admit(tx(0, 2, fee=5), 0.0)
    assert pool.admit(tx(0, 3, fee=1), 0.0) is POOL_FULL
    assert pool.pending() == 2
    assert pool.evicted == 0  # a bounce is a rejection, not an eviction


def test_equal_fee_overload_sheds_the_newcomer():
    pool = closed_pool(max_txs=2)
    pool.admit(tx(0, 1, fee=3), 0.0)
    pool.admit(tx(0, 2, fee=3), 0.0)
    assert pool.admit(tx(0, 3, fee=3), 0.0) is POOL_FULL
    assert pool.take_block(1.0) == (tx(0, 1, fee=3), tx(0, 2, fee=3))


def test_evicted_transaction_may_be_resubmitted():
    pool = closed_pool(max_txs=1)
    pool.admit(tx(0, 1, fee=1), 0.0)
    pool.admit(tx(0, 2, fee=9), 0.0)  # evicts tx 1
    assert pool.admit(tx(0, 1, fee=1), 1.0) is POOL_FULL  # bounces, not DUPLICATE
    pool.take_block(2.0)
    assert pool.admit(tx(0, 1, fee=1), 3.0) is ACCEPTED


def test_pool_never_exceeds_caps_under_random_load():
    """Property: occupancy respects both caps at every step."""
    rng = RngStream(7, "pool-bounds")
    pool = closed_pool(max_txs=50, max_bytes=4_000)
    for i in range(2_000):
        pool.admit(
            tx(rng.randint(0, 9), i, payload=rng.randint(0, 64), fee=rng.randint(0, 5)),
            float(i),
        )
        assert pool.pending() <= 50
        assert pool.pending_bytes() <= 4_000
        if rng.random() < 0.05:
            pool.take_block(float(i))


def test_byte_cap_evicts():
    pool = closed_pool(max_bytes=2 * tx(payload=16).wire_size())
    pool.admit(tx(0, 1, fee=2), 0.0)
    pool.admit(tx(0, 2, fee=3), 0.0)
    assert pool.admit(tx(0, 3, fee=4), 0.0) is ACCEPTED
    assert pool.pending() == 2
    assert pool.evicted == 1


# -- backpressure ------------------------------------------------------------


def test_watermark_backpressure_engages_and_releases():
    pool = closed_pool(max_txs=10, high_watermark=0.8, low_watermark=0.4)
    for i in range(8):
        assert pool.admit(tx(0, i), 0.0) is ACCEPTED
    # At the high watermark, fee-0 submissions are refused...
    assert pool.admit(tx(0, 100), 0.0) is POOL_FULL
    # ...but a paying transaction still displaces its way in.
    assert pool.admit(tx(0, 101, fee=5), 0.0) is ACCEPTED
    # Draining below the low watermark releases the latch (4 txs drain).
    pool.take_block(1.0)
    pool.take_block(1.0)
    assert pool.admit(tx(0, 102), 2.0) is ACCEPTED
    assert pool.stats()["backpressure_engagements"] == 1


# -- proposal drain ----------------------------------------------------------


def test_drains_by_fee_then_fifo():
    pool = closed_pool()
    pool.admit(tx(0, 1, fee=1), 0.0)
    pool.admit(tx(0, 2, fee=9), 0.0)
    pool.admit(tx(0, 3, fee=9), 0.0)
    pool.admit(tx(0, 4, fee=4), 0.0)
    assert [t.tx_id for t in pool.take_block(1.0)] == [2, 3, 4, 1]


def test_max_block_bytes_caps_the_drain():
    size = tx(payload=16).wire_size()
    pool = PriorityMempool(16, 10, open_loop=False, max_block_bytes=2 * size)
    for i in range(5):
        pool.admit(tx(0, i), 0.0)
    assert len(pool.take_block(1.0)) == 2
    assert len(pool.take_block(1.0)) == 2
    assert len(pool.take_block(1.0)) == 1


def test_outsized_transaction_cannot_wedge_the_pool():
    """A tx above max_block_bytes still ships (alone) rather than sticking."""
    pool = PriorityMempool(16, 10, open_loop=False, max_block_bytes=50)
    pool.admit(tx(0, 1, payload=500), 0.0)
    pool.admit(tx(0, 2, payload=0), 0.0)
    first = pool.take_block(1.0)
    assert [t.tx_id for t in first] == [1]
    assert [t.tx_id for t in pool.take_block(1.0)] == [2]


def test_open_loop_synthetics_respect_byte_cap():
    size = 16 + 40
    pool = PriorityMempool(16, 10, open_loop=True, max_block_bytes=3 * size)
    assert len(pool.take_block(0.0)) == 3


# -- determinism -------------------------------------------------------------


def _scripted_ops(seed):
    rng = RngStream(seed, "pool-determinism")
    ops = []
    for i in range(600):
        if rng.random() < 0.15:
            ops.append(("drain", round(float(i), 3)))
        else:
            ops.append(
                (
                    "admit",
                    rng.randint(0, 7),
                    i,
                    rng.randint(0, 32),
                    rng.randint(0, 9),
                    round(float(i) * 0.5, 3),
                )
            )
    return ops


def _run_ops(ops):
    pool = PriorityMempool(
        16, 8, open_loop=False, max_txs=64, max_bytes=6_000,
        rate_limit_per_ms=2.0, rate_burst=16.0,
    )
    blocks = []
    verdicts = []
    for op in ops:
        if op[0] == "drain":
            blocks.append(pool.take_block(op[1]))
        else:
            _, client, i, payload, fee, now = op
            verdicts.append(
                pool.admit(Transaction(client, i, payload, now, fee), now)
            )
    return blocks, verdicts, pool.stats()


def test_same_submission_order_gives_byte_identical_blocks():
    """The pool is pure: identical ops => identical drained blocks, bytes
    and all - the property that makes sim and asyncio runs agree."""
    ops = _scripted_ops(21)
    blocks_a, verdicts_a, stats_a = _run_ops(ops)
    blocks_b, verdicts_b, stats_b = _run_ops(ops)
    assert verdicts_a == verdicts_b
    assert stats_a == stats_b
    assert len(blocks_a) == len(blocks_b) and any(blocks_a)
    for left, right in zip(blocks_a, blocks_b, strict=True):
        assert left == right
        # Byte-identical on the wire, not merely equal in memory.
        enc_left = b"".join(encode_message(ClientRequest(t.client_id, t)) for t in left)
        enc_right = b"".join(encode_message(ClientRequest(t.client_id, t)) for t in right)
        assert enc_left == enc_right


def test_stats_counters_are_consistent():
    ops = _scripted_ops(3)
    _, verdicts, stats = _run_ops(ops)
    assert stats["admitted"] == sum(1 for v in verdicts if v is ACCEPTED)
    rejected = (
        stats["rejected_rate_limited"]
        + stats["rejected_pool_full"]
        + stats["rejected_duplicate"]
    )
    assert rejected == sum(1 for v in verdicts if v is not ACCEPTED)
    assert stats["pending_txs"] == stats["admitted"] - stats["drained"] - stats["evicted"]


def test_legacy_add_is_unconditioned_but_capped():
    pool = closed_pool(max_txs=3, rate_limit_per_ms=0.000001, rate_burst=1.0)
    for i in range(5):
        pool.add(tx(0, i))  # bypasses the rate limiter entirely
    assert pool.pending() == 3
    pool.add(tx(0, 4))  # idempotent per key
    assert pool.pending() == 3
