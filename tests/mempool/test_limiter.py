"""Token-bucket rate limiter: exact refill, burst bounds, sender eviction."""

from repro.mempool.limiter import SenderRateLimiter, TokenBucket


def test_burst_then_starvation():
    bucket = TokenBucket(rate_per_ms=1.0, burst=4.0, now=0.0)
    assert all(bucket.try_acquire(0.0) for _ in range(4))
    assert not bucket.try_acquire(0.0)


def test_refills_exactly_at_the_configured_rate():
    """Tokens accrue at precisely rate * elapsed, capped at the burst."""
    bucket = TokenBucket(rate_per_ms=2.0, burst=4.0, now=0.0)
    for _ in range(4):
        assert bucket.try_acquire(0.0)
    # 1 ms later exactly 2 tokens have accrued: two grants, no third.
    assert bucket.try_acquire(1.0)
    assert bucket.try_acquire(1.0)
    assert not bucket.try_acquire(1.0)
    # 0.5 ms at 2/ms = exactly one more token.
    assert bucket.try_acquire(1.5)
    assert not bucket.try_acquire(1.5)


def test_refill_caps_at_burst():
    bucket = TokenBucket(rate_per_ms=1.0, burst=3.0, now=0.0)
    bucket.refill(1_000_000.0)
    assert bucket.tokens == 3.0


def test_time_never_runs_backwards():
    bucket = TokenBucket(rate_per_ms=1.0, burst=2.0, now=10.0)
    assert bucket.try_acquire(10.0)
    bucket.refill(5.0)  # stale observation must not mint tokens
    assert bucket.tokens == 1.0


def test_fractional_refill_accumulates_without_float_loss():
    """Many small refills sum to whole tokens (the epsilon guard)."""
    bucket = TokenBucket(rate_per_ms=0.1, burst=1.0, now=0.0)
    assert bucket.try_acquire(0.0)
    # 10 x 1 ms at 0.1 tokens/ms = exactly 1 token despite float steps.
    for i in range(1, 11):
        bucket.refill(float(i))
    assert bucket.try_acquire(10.0)


def test_disabled_limiter_always_allows():
    limiter = SenderRateLimiter(rate_per_ms=0.0, burst=1.0)
    assert all(limiter.allow(7, 0.0) for _ in range(100))
    assert limiter.tracked_senders() == 0


def test_limiter_is_per_sender():
    limiter = SenderRateLimiter(rate_per_ms=0.001, burst=1.0)
    assert limiter.allow(1, 0.0)
    assert not limiter.allow(1, 0.0)
    assert limiter.allow(2, 0.0)  # a different sender has its own bucket


def test_sender_map_is_bounded():
    limiter = SenderRateLimiter(rate_per_ms=0.001, burst=1.0, max_senders=8)
    for sender in range(20):
        limiter.allow(sender, 0.0)
    assert limiter.tracked_senders() <= 9  # cap + the newcomer being added
