"""Smoke tests for the per-figure experiment definitions (tiny scale)."""

import pytest

from repro.bench.experiments import fig6, fig9, table1_experiment


def test_table1_experiment_measured_matches_analytic():
    report = table1_experiment(f=1, views_per_run=6)
    measured = report.data["measured"]
    from repro.analysis.complexity import expected_messages

    for protocol, value in measured.items():
        assert value == pytest.approx(expected_messages(protocol, 1), rel=0.05)


def test_table1_render_contains_all_rows():
    report = table1_experiment(f=1, measure=False)
    text = report.render()
    for name in ("pbft", "minbft", "hotstuff", "damysus", "chained-damysus"):
        assert name in text


def test_fig6_report_structure():
    report = fig6(payload_bytes=0, thresholds=[1], views_per_run=3, repetitions=1)
    assert len(report.rows) == 6  # six protocols x one threshold
    assert len(report.notes) == 4  # four improvement lines
    grid = report.data["grid"]
    assert ("damysus", 1) in grid


def test_fig6_hybrids_beat_baselines_at_f1():
    report = fig6(payload_bytes=0, thresholds=[1], views_per_run=4, repetitions=1)
    grid = report.data["grid"]
    assert (
        grid[("damysus", 1)].throughput_kops > grid[("hotstuff", 1)].throughput_kops
    )
    assert grid[("damysus", 1)].latency_ms < grid[("hotstuff", 1)].latency_ms
    assert (
        grid[("chained-damysus", 1)].throughput_kops
        > grid[("chained-hotstuff", 1)].throughput_kops
    )


def test_fig9_rows_and_saturation():
    report = fig9(
        intervals_ms=[5.0, 0.5],
        num_clients=2,
        duration_ms=400.0,
        protocols=["damysus"],
    )
    assert len(report.rows) == 2
    light = report.data[("damysus", 5.0)]
    heavy = report.data[("damysus", 0.5)]
    assert heavy["achieved_kops"] >= light["achieved_kops"]
