"""Tests for the experiment runner and reporting."""


from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentRunner
from repro.bench.workload import PAYLOAD_0B, PAYLOAD_256B, Workload


def tiny_runner(**overrides):
    params = dict(payload_bytes=0, block_size=5, views_per_run=3, repetitions=2)
    params.update(overrides)
    return ExperimentRunner(**params)


def test_run_cell_aggregates_repetitions():
    summary = tiny_runner().run_cell("damysus", 1)
    assert summary.repetitions == 2
    assert summary.throughput_kops > 0
    assert summary.latency_ms > 0
    assert summary.num_replicas == 3


def test_run_cell_uses_distinct_seeds():
    runner = tiny_runner()
    r1 = runner.run_once("damysus", 1, seed=1)
    r2 = runner.run_once("damysus", 1, seed=2)
    assert r1.mean_latency_ms != r2.mean_latency_ms


def test_sweep_covers_grid():
    grid = tiny_runner(repetitions=1).sweep(["damysus", "hotstuff"], [1, 2])
    assert set(grid) == {("damysus", 1), ("damysus", 2), ("hotstuff", 1), ("hotstuff", 2)}


def test_config_overrides_pass_through():
    runner = tiny_runner()
    config = runner.config_for("damysus", 1, seed=5, payload_bytes=128)
    assert config.payload_bytes == 128
    assert config.seed == 5


def test_workload_sizes():
    assert PAYLOAD_0B.tx_bytes == 40
    assert PAYLOAD_256B.tx_bytes == 296
    assert PAYLOAD_256B.block_bytes == 400 * 296
    assert Workload(16, block_size=10).label() == "16B x 10tx"


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [[1, 2.5], ["xx", 100.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbbb" in lines[1]
    assert len(lines) == 5
