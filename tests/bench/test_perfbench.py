"""Tests for the perf measurement + baseline gate (repro perf)."""

import json

import pytest

from repro.bench import perfbench


def tiny_hotpath():
    return perfbench.measure_hotpath({"protocol": "hotstuff", "f": 1, "views": 3})


def test_measure_hotpath_shape():
    out = tiny_hotpath()
    for label in ("cached", "uncached"):
        assert out[label]["events"] > 0
        assert out[label]["wall_seconds"] >= 0.0
    # Identical event counts: the caches are result-invisible.
    assert out["cached"]["events"] == out["uncached"]["events"]
    assert out["cache_speedup"] > 0.0


def test_measure_grid_identity_and_shape():
    out = perfbench.measure_grid(
        {"thresholds": [1], "views": 3, "repetitions": 1, "payload": 0}, jobs=1
    )
    assert out["cells"] == 6  # every protocol at f=1
    assert out["sequential_cached_s"] > 0.0
    assert out["total_speedup"] > 0.0


def test_baseline_roundtrip(tmp_path):
    bench = {"meta": {"cpus": 4, "quick": True, "schema": 1}, "hotpath": {}, "grid": {}}
    path = tmp_path / "BENCH_baseline.json"
    perfbench.write_baseline(path, bench)
    assert perfbench.load_baseline(path) == bench
    assert json.loads(path.read_text())["meta"]["cpus"] == 4


def fake_bench(eps=100_000.0, grid_s=2.0, cache_speedup=1.5, total_speedup=1.5, jobs=1):
    return {
        "meta": {"cpus": jobs, "quick": False, "schema": 1},
        "hotpath": {
            "cached": {"events_per_sec": eps, "wall_seconds": 0.1, "events": 10_000},
            "uncached": {
                "events_per_sec": eps / cache_speedup,
                "wall_seconds": 0.1 * cache_speedup,
                "events": 10_000,
            },
            "cache_speedup": cache_speedup,
        },
        "grid": {
            "cells": 18,
            "jobs": jobs,
            "sequential_uncached_s": grid_s * total_speedup,
            "sequential_cached_s": grid_s,
            "parallel_cached_s": grid_s,
            "cache_speedup": total_speedup,
            "parallel_speedup": 1.0,
            "total_speedup": total_speedup,
        },
    }


def test_check_bench_passes_on_self():
    ok, report, messages = perfbench.check_bench(fake_bench(), fake_bench())
    assert ok, messages
    assert report.drifts  # Drift machinery engaged
    assert any("ok:" in m for m in messages)


def test_check_bench_flags_hotpath_slowdown():
    ok, _, messages = perfbench.check_bench(
        fake_bench(eps=100_000.0), fake_bench(eps=20_000.0), threshold=3.0
    )
    assert not ok
    assert any("hotpath" in m and "slower" in m for m in messages)


def test_check_bench_flags_grid_slowdown():
    ok, _, messages = perfbench.check_bench(
        fake_bench(grid_s=1.0), fake_bench(grid_s=10.0), threshold=3.0
    )
    assert not ok
    assert any("grid" in m and "slower" in m for m in messages)


def test_check_bench_flags_lost_cache_win():
    ok, _, messages = perfbench.check_bench(
        fake_bench(), fake_bench(cache_speedup=1.0, total_speedup=1.2)
    )
    assert not ok
    assert any("cache_speedup" in m for m in messages)


def test_check_bench_requires_multicore_speedup():
    # With 4 effective workers the end-to-end grid win must reach 2x.
    ok, _, messages = perfbench.check_bench(
        fake_bench(jobs=4), fake_bench(total_speedup=1.5, jobs=4)
    )
    assert not ok
    assert any("total_speedup" in m for m in messages)
    # The same 1.5x passes on a single-core machine (cache win only).
    ok, _, _ = perfbench.check_bench(fake_bench(), fake_bench(total_speedup=1.5))
    assert ok


def test_required_grid_speedup_scaling():
    assert perfbench.required_grid_speedup(1) == pytest.approx(
        perfbench.SINGLE_CORE_REQUIRED_SPEEDUP
    )
    assert perfbench.required_grid_speedup(4) == pytest.approx(
        perfbench.MULTI_CORE_REQUIRED_SPEEDUP
    )


def test_committed_baseline_is_valid():
    """The repo's committed BENCH_baseline.json parses and shows the wins."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_baseline.json"
    if not path.exists():
        pytest.skip("BENCH_baseline.json not generated")
    baseline = perfbench.load_baseline(path)
    assert baseline["hotpath"]["cache_speedup"] >= perfbench.MIN_CACHE_SPEEDUP
    assert baseline["grid"]["total_speedup"] >= perfbench.required_grid_speedup(
        baseline["grid"]["jobs"]
    )