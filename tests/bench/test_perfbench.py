"""Tests for the perf measurement + baseline gate (repro perf)."""

import json

import pytest

from repro.bench import perfbench


def tiny_hotpath():
    return perfbench.measure_hotpath({"protocol": "hotstuff", "f": 1, "views": 3})


def test_measure_hotpath_shape():
    out = tiny_hotpath()
    for label in ("cached", "uncached"):
        assert out[label]["events"] > 0
        assert out[label]["wall_seconds"] >= 0.0
    # Identical event counts: the caches are result-invisible.
    assert out["cached"]["events"] == out["uncached"]["events"]
    assert out["cache_speedup"] > 0.0


def test_measure_grid_identity_and_shape():
    out = perfbench.measure_grid(
        {"thresholds": [1], "views": 3, "repetitions": 1, "payload": 0}, jobs=1
    )
    assert out["cells"] == 6  # every protocol at f=1
    assert out["sequential_cached_s"] > 0.0
    assert out["total_speedup"] > 0.0


def test_baseline_roundtrip(tmp_path):
    bench = {"meta": {"cpus": 4, "quick": True, "schema": 1}, "hotpath": {}, "grid": {}}
    path = tmp_path / "BENCH_baseline.json"
    perfbench.write_baseline(path, bench)
    assert perfbench.load_baseline(path) == bench
    assert json.loads(path.read_text())["meta"]["cpus"] == 4


def fake_bench(eps=100_000.0, grid_s=2.0, cache_speedup=1.5, total_speedup=1.5, jobs=1):
    return {
        "meta": {"cpus": jobs, "quick": False, "schema": 1},
        "hotpath": {
            "cached": {"events_per_sec": eps, "wall_seconds": 0.1, "events": 10_000},
            "uncached": {
                "events_per_sec": eps / cache_speedup,
                "wall_seconds": 0.1 * cache_speedup,
                "events": 10_000,
            },
            "cache_speedup": cache_speedup,
        },
        "grid": {
            "cells": 18,
            "jobs": jobs,
            "sequential_uncached_s": grid_s * total_speedup,
            "sequential_cached_s": grid_s,
            "parallel_cached_s": grid_s,
            "cache_speedup": total_speedup,
            "parallel_speedup": 1.0,
            "total_speedup": total_speedup,
        },
    }


def test_check_bench_passes_on_self():
    ok, report, messages = perfbench.check_bench(fake_bench(), fake_bench())
    assert ok, messages
    assert report.drifts  # Drift machinery engaged
    assert any("ok:" in m for m in messages)


def test_check_bench_flags_hotpath_slowdown():
    ok, _, messages = perfbench.check_bench(
        fake_bench(eps=100_000.0), fake_bench(eps=20_000.0), threshold=3.0
    )
    assert not ok
    assert any("hotpath" in m and "slower" in m for m in messages)


def test_check_bench_flags_grid_slowdown():
    ok, _, messages = perfbench.check_bench(
        fake_bench(grid_s=1.0), fake_bench(grid_s=10.0), threshold=3.0
    )
    assert not ok
    assert any("grid" in m and "slower" in m for m in messages)


def test_check_bench_flags_lost_cache_win():
    ok, _, messages = perfbench.check_bench(
        fake_bench(), fake_bench(cache_speedup=1.0, total_speedup=1.2)
    )
    assert not ok
    assert any("cache_speedup" in m for m in messages)


def test_check_bench_requires_multicore_speedup():
    # With 4 effective workers the end-to-end grid win must reach 2x.
    ok, _, messages = perfbench.check_bench(
        fake_bench(jobs=4), fake_bench(total_speedup=1.5, jobs=4)
    )
    assert not ok
    assert any("total_speedup" in m for m in messages)
    # The same 1.5x passes on a single-core machine (cache win only).
    ok, _, _ = perfbench.check_bench(fake_bench(), fake_bench(total_speedup=1.5))
    assert ok


def test_required_grid_speedup_scaling():
    assert perfbench.required_grid_speedup(1) == pytest.approx(
        perfbench.SINGLE_CORE_REQUIRED_SPEEDUP
    )
    assert perfbench.required_grid_speedup(4) == pytest.approx(
        perfbench.MULTI_CORE_REQUIRED_SPEEDUP
    )


def test_measure_batch_verify_shape():
    out = perfbench.measure_batch_verify({"thresholds": [1]})
    assert len(out["cells"]) == 1
    cell = out["cells"][0]
    assert cell["f"] == 1
    assert cell["sigs"] == 3
    assert cell["per_sig_s"] > 0.0
    assert cell["batch_s"] > 0.0
    assert out["max_speedup"] == cell["speedup"]


def test_measure_codec_shape():
    out = perfbench.measure_codec({"rounds": 20})
    assert out["wire_bytes"] > 0
    assert out["encode_per_sec"] > 0.0
    assert out["decode_per_sec"] > 0.0


def test_measure_parallel_verify_skips_below_two_cores(monkeypatch):
    import repro.crypto.pool as pool_mod

    monkeypatch.setattr(pool_mod, "available_cpus", lambda: 1)
    out = perfbench.measure_parallel_verify({"pairs": 4})
    assert out["skipped"] == "only 1 cpu(s) available"


def crypto_cells(batch_speedup=3.0, codec_rate=50_000.0, parallel=None):
    cells = {
        "batch_verify": {
            "params": {},
            "cells": [{"f": 2, "sigs": 5, "per_sig_s": 0.1, "batch_s": 0.04,
                       "speedup": batch_speedup}],
            "max_speedup": batch_speedup,
        },
        "codec": {
            "params": {},
            "wire_bytes": 5000,
            "encode_per_sec": codec_rate,
            "decode_per_sec": codec_rate / 8,
            "wall_seconds": 0.1,
        },
    }
    if parallel is not None:
        cells["parallel_verify"] = parallel
    return cells


def test_check_bench_tolerates_old_baseline_without_crypto_cells():
    current = fake_bench()
    current.update(crypto_cells())
    ok, _, messages = perfbench.check_bench(fake_bench(), current)
    assert ok, messages


def test_check_bench_flags_lost_batch_speedup():
    baseline = fake_bench()
    baseline.update(crypto_cells())
    current = fake_bench()
    current.update(crypto_cells(batch_speedup=perfbench.MIN_BATCH_SPEEDUP - 0.5))
    ok, _, messages = perfbench.check_bench(baseline, current)
    assert not ok
    assert any("batch_verify" in m for m in messages)


def test_check_bench_flags_codec_slowdown():
    baseline = fake_bench()
    baseline.update(crypto_cells(codec_rate=100_000.0))
    current = fake_bench()
    current.update(crypto_cells(codec_rate=10_000.0))
    ok, _, messages = perfbench.check_bench(baseline, current, threshold=3.0)
    assert not ok
    assert any("codec" in m and "slower" in m for m in messages)


def test_check_bench_skipped_parallel_cell_is_not_a_failure():
    skipped = {"params": {}, "skipped": "only 1 cpu(s) available"}
    baseline = fake_bench()
    baseline.update(crypto_cells(parallel=skipped))
    current = fake_bench()
    current.update(crypto_cells(parallel=skipped))
    ok, _, messages = perfbench.check_bench(baseline, current)
    assert ok, messages
    assert any(m.startswith("skip parallel_verify") for m in messages)


def test_check_bench_flags_sharded_slowdown():
    fast = {"params": {}, "jobs": 2, "sequential_s": 0.4, "sharded_s": 0.2, "speedup": 2.0}
    slow = {"params": {}, "jobs": 2, "sequential_s": 0.4, "sharded_s": 2.0, "speedup": 0.2}
    baseline = fake_bench()
    baseline.update(crypto_cells(parallel=fast))
    current = fake_bench()
    current.update(crypto_cells(parallel=slow))
    ok, _, messages = perfbench.check_bench(baseline, current, threshold=3.0)
    assert not ok
    assert any("parallel_verify" in m for m in messages)


def test_committed_baseline_is_valid():
    """The repo's committed BENCH_baseline.json parses and shows the wins."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_baseline.json"
    if not path.exists():
        pytest.skip("BENCH_baseline.json not generated")
    baseline = perfbench.load_baseline(path)
    assert baseline["hotpath"]["cache_speedup"] >= perfbench.MIN_CACHE_SPEEDUP
    assert baseline["grid"]["total_speedup"] >= perfbench.required_grid_speedup(
        baseline["grid"]["jobs"]
    )
    assert baseline["batch_verify"]["max_speedup"] >= perfbench.MIN_BATCH_SPEEDUP