"""Tests for the parallel scenario executor.

The contract under test: sharding the grid across processes is
*invisible* - ``run_cells(..., jobs=N)`` returns summaries equal to the
sequential path for any N, and the perf caches never change results.
"""

import pytest

from repro import perf
from repro.bench.parallel import resolve_jobs, run_cells
from repro.bench.runner import ExperimentRunner


def small_runner(**overrides):
    params = dict(views_per_run=4, repetitions=2, payload_bytes=64, block_size=100)
    params.update(overrides)
    return ExperimentRunner(**params)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(0) >= 1  # all cores
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_sequential_matches_run_cell():
    runner = small_runner()
    cells = [("hotstuff", 1), ("damysus", 1)]
    merged = run_cells(runner, cells, jobs=1)
    for protocol, f in cells:
        assert merged[(protocol, f)] == runner.run_cell(protocol, f)


def test_parallel_matches_sequential():
    """jobs=N merges to byte-identical summaries vs jobs=1."""
    runner = small_runner()
    cells = [("hotstuff", 1), ("damysus", 2), ("chained-damysus", 1)]
    sequential = run_cells(runner, cells, jobs=1)
    parallel = run_cells(runner, cells, jobs=3)
    assert parallel == sequential
    assert list(parallel) == list(sequential)  # same cell order too


def test_sweep_uses_shared_path():
    runner = small_runner()
    grid_seq = runner.sweep(["hotstuff", "damysus"], [1], jobs=1)
    grid_par = runner.sweep(["hotstuff", "damysus"], [1], jobs=2)
    assert grid_seq == grid_par


def test_caches_do_not_change_results():
    runner = small_runner()
    cells = [("hotstuff", 2), ("damysus", 2)]
    try:
        perf.set_caches_enabled(False)
        uncached = run_cells(runner, cells, jobs=1)
    finally:
        perf.set_caches_enabled(True)
    cached = run_cells(runner, cells, jobs=1)
    assert cached == uncached


def test_single_task_stays_in_process():
    """A one-task grid must not pay process-pool overhead."""
    runner = small_runner(repetitions=1)
    merged = run_cells(runner, [("hotstuff", 1)], jobs=8)
    assert merged[("hotstuff", 1)] == runner.run_cell("hotstuff", 1)
