"""The open-loop load generator: determinism, percentiles, net smoke."""

import asyncio

from repro.bench.load import (
    LoadReport,
    load_config,
    percentile,
    run_load_net,
    run_load_sim,
)


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile([], 0.5) == 0.0
    assert percentile(values, 0.50) == 2.0
    assert percentile(values, 0.99) == 4.0
    assert percentile([7.0], 0.50) == 7.0


def quick_config(**overrides):
    params = dict(
        rate_per_s=2_000.0,
        senders=4,
        seed=11,
        payload_bytes=32,
        block_size=50,
        timeout_ms=500.0,
    )
    params.update(overrides)
    return load_config("damysus", **params)


def test_load_sim_commits_and_completes():
    report = run_load_sim(quick_config(), duration_ms=600.0, rate_per_s=2_000.0)
    assert report.runtime == "sim"
    assert report.committed_blocks > 0
    assert report.completed > 0
    assert 0 < report.p50_ms <= report.p99_ms
    assert report.admission["accepted"] > 0


def test_load_sim_same_seed_is_bit_identical():
    """Two runs with the same seed produce byte-for-byte equal reports."""
    first = run_load_sim(quick_config(), duration_ms=600.0, rate_per_s=2_000.0)
    second = run_load_sim(quick_config(), duration_ms=600.0, rate_per_s=2_000.0)
    assert first == second
    assert first.to_dict() == second.to_dict()


def test_load_sim_seed_changes_the_run():
    base = run_load_sim(quick_config(), duration_ms=600.0, rate_per_s=2_000.0)
    other = run_load_sim(
        quick_config(seed=12), duration_ms=600.0, rate_per_s=2_000.0
    )
    assert base != other


def test_load_sim_overload_reports_drops():
    """A tiny rate-limited pool under heavy offered load sheds traffic."""
    config = quick_config(
        rate_per_s=5_000.0,
        mempool_max_txs=40,
        sender_rate_limit=0.05,
        sender_rate_burst=4.0,
    )
    report = run_load_sim(config, duration_ms=600.0, rate_per_s=5_000.0)
    assert report.admission["rate-limited"] > 0
    assert report.dropped > 0
    assert report.drop_rate > 0.0


def test_load_report_serializes():
    report = run_load_sim(quick_config(), duration_ms=400.0, rate_per_s=2_000.0)
    data = report.to_dict()
    assert isinstance(data["admission"], dict)
    rows = report.summary_rows()
    assert ["runtime", "sim"] in rows
    assert isinstance(report, LoadReport)


def test_load_net_smoke():
    """The same machines over real localhost TCP commit and complete."""
    config = quick_config(rate_per_s=400.0, senders=2, timeout_ms=1_000.0)
    report = asyncio.run(
        run_load_net(config, duration_s=3.0, rate_per_s=400.0, n=4)
    )
    assert report.runtime == "net"
    assert report.committed_blocks >= 1
    assert report.completed > 0
    assert report.p50_ms > 0
