"""Hot-path microbenchmarks: the simulator inner loop and its caches.

Unlike the figure benchmarks (which regenerate the paper's tables),
these measure the *implementation*: events/sec through ``Simulator.run``
with the result-invisible caches (``repro.perf``) enabled vs disabled,
and the parallel executor's merge identity.  They back the
``repro perf`` baseline gate with a pytest-benchmark view of the same
workloads.
"""

from __future__ import annotations

import os

import pytest

from repro import perf
from repro.bench.parallel import run_cells
from repro.bench.runner import ExperimentRunner
from repro.config import SystemConfig
from repro.protocols.system import ConsensusSystem

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: A mid-size single cell: large enough that crypto and codec dominate.
HOTPATH_F = 20 if _SCALE == "paper" else 10
HOTPATH_VIEWS = 12 if _SCALE == "paper" else 6


def _run_cell() -> int:
    config = SystemConfig(protocol="hotstuff", f=HOTPATH_F, payload_bytes=256, seed=1)
    system = ConsensusSystem(config)
    system.run_until_views(HOTPATH_VIEWS)
    return system.sim.events_processed


@pytest.mark.parametrize("caches", ["cached", "uncached"])
def test_hotpath_events(benchmark, caches):
    """Events through the simulator with and without the perf caches."""
    perf.set_caches_enabled(caches == "cached")
    try:
        events = benchmark.pedantic(_run_cell, rounds=3, iterations=1)
    finally:
        perf.set_caches_enabled(True)
    assert events > 0
    print(f"\n{caches}: {events} events per run")


def test_parallel_merge_identity(benchmark):
    """A 2-worker grid merges to exactly the sequential summaries."""
    runner = ExperimentRunner(views_per_run=4, repetitions=2)
    cells = [("hotstuff", 1), ("damysus", 1)]
    sequential = run_cells(runner, cells, jobs=1)
    parallel = benchmark.pedantic(
        run_cells, args=(runner, cells), kwargs={"jobs": 2}, rounds=1, iterations=1
    )
    assert parallel == sequential
