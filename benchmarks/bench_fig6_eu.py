"""Fig 6: throughput and latency on 4 EU regions (a: 256 B, b: 0 B).

Paper expectations (EU regions, averaged over f):
  * Fig 6a (256 B): Damysus-C +59.7%/-35.9%, Damysus-A +19.3%/-16.6%,
    Damysus +87.5%/-45%, Chained-Damysus +50.5%/-32.1% vs (chained) HotStuff.
  * Fig 6b (0 B): Damysus-C +54.6%/-31.8%, Damysus-A +36.7%/-27.4%,
    Damysus +107.1%/-50.6%, Chained-Damysus +57.4%/-33.1%.

The shape assertions below check what must transfer from the paper: every
hybrid beats its baseline on both axes at every f, and full Damysus beats
both single-component ablations.
"""

import pytest

from repro.analysis.metrics import latency_decrease_percent, throughput_increase_percent
from repro.bench.experiments import fig6


def _assert_figure_shape(report):
    grid = report.data["grid"]
    thresholds = report.data["thresholds"]
    for f in thresholds:
        hotstuff = grid[("hotstuff", f)]
        chained_hs = grid[("chained-hotstuff", f)]
        damysus = grid[("damysus", f)]
        # Hybrids beat basic HotStuff on both axes.
        for name in ("damysus-c", "damysus-a", "damysus"):
            cell = grid[(name, f)]
            assert cell.throughput_kops > hotstuff.throughput_kops, (name, f)
            assert cell.latency_ms < hotstuff.latency_ms, (name, f)
        # Damysus combines both components and wins overall.
        assert damysus.throughput_kops >= grid[("damysus-c", f)].throughput_kops
        assert damysus.throughput_kops >= grid[("damysus-a", f)].throughput_kops
        # Chained-Damysus beats chained HotStuff.
        chained_dam = grid[("chained-damysus", f)]
        assert chained_dam.throughput_kops > chained_hs.throughput_kops
        assert chained_dam.latency_ms < chained_hs.latency_ms


@pytest.mark.parametrize("payload", [256, 0], ids=["fig6a_256B", "fig6b_0B"])
def test_fig6_eu_regions(benchmark, bench_scale, payload):
    report = benchmark.pedantic(
        fig6,
        kwargs={
            "payload_bytes": payload,
            "thresholds": bench_scale["thresholds"],
            "views_per_run": bench_scale["views_per_run"],
            "repetitions": bench_scale["repetitions"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render())
    _assert_figure_shape(report)
    grid = report.data["grid"]
    for f in bench_scale["thresholds"]:
        tput = throughput_increase_percent(
            grid[("damysus", f)].throughput_kops, grid[("hotstuff", f)].throughput_kops
        )
        lat = latency_decrease_percent(
            grid[("damysus", f)].latency_ms, grid[("hotstuff", f)].latency_ms
        )
        benchmark.extra_info[f"damysus_vs_hotstuff_f{f}"] = f"+{tput:.1f}%/-{lat:.1f}%"
