"""Table 1: message complexity, analytic vs simulator-measured.

Regenerates the paper's comparative-analysis table and asserts that the
simulator's steady-state message counts land exactly on the closed
forms: 24f+8 for HotStuff, 12f+6 for Damysus and Chained-Damysus, plus
the derived 16f+8 (Damysus-C) and 18f+6 (Damysus-A).
"""

import pytest

from repro.analysis.complexity import expected_messages
from repro.bench.experiments import ALL_PROTOCOLS, table1_experiment


@pytest.mark.parametrize("f", [1, 2, 4])
def test_table1_message_counts(benchmark, f):
    report = benchmark.pedantic(
        table1_experiment, kwargs={"f": f, "views_per_run": 8}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    measured = report.data["measured"]
    for protocol in ALL_PROTOCOLS:
        analytic = expected_messages(protocol, f)
        assert measured[protocol] == pytest.approx(analytic, rel=0.05), protocol
        benchmark.extra_info[f"{protocol}_measured"] = measured[protocol]
        benchmark.extra_info[f"{protocol}_analytic"] = analytic


def test_table1_damysus_message_advantage(benchmark):
    """Damysus must halve HotStuff's per-block message count asymptotically."""
    report = benchmark.pedantic(
        table1_experiment, kwargs={"f": 4, "views_per_run": 8}, rounds=1, iterations=1
    )
    measured = report.data["measured"]
    assert measured["damysus"] < measured["hotstuff"] * 0.6
    assert measured["chained-damysus"] < measured["chained-hotstuff"] * 0.6
