"""Rejoin latency for lagging replicas: checkpoint transfer vs replay.

Section 5's streamlined protocols keep the quorum small (2f+1), which
makes every replica's availability matter more - so how fast a crashed
replica becomes a useful quorum member again is a first-class metric.
This benchmark crashes one replica, lets the cluster commit ``missed``
more views, recovers it and measures the simulated time until it is
back inside ``catchup_view_gap`` of the frontier.

Two transfer strategies are compared under the same miss count:

* **checkpoint** - peers certify checkpoints every 50 blocks and compact
  their logs; the rejoiner installs a certified checkpoint and replays
  only the suffix above it.  Work is O(interval), independent of how
  long the replica was gone.
* **replay** - the checkpoint interval is set beyond the run length, so
  peers never compact and serve the entire missed suffix in
  ``sync_chunk_blocks``-sized chunks.  Work is O(missed).
"""

import os

import pytest

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.protocols.system import ConsensusSystem

#: Views the victim sits out, per scale (see conftest.SCALE).
if os.environ.get("REPRO_BENCH_SCALE", "small") == "paper":
    MISSED = [1_000, 5_000]
else:
    MISSED = [100, 400]

#: Sim-time allowance for one rejoin, per missed view (generous).
REJOIN_BOUND_MS_PER_VIEW = 200.0


def run_rejoin(missed: int, interval: int, seed: int = 11) -> dict:
    """Crash, miss ``missed`` views, recover; measure rejoin latency."""
    config = SystemConfig(
        protocol="damysus",
        f=1,
        payload_bytes=0,
        block_size=1,
        seed=seed,
        timeout_ms=500.0,
        costs=CostModel.zero(),
        checkpoint_interval=interval,
    )
    system = ConsensusSystem(config)
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    base_views = len(system.monitor.committed_views())
    system.run_until_views(base_views + missed, max_time_ms=missed * 10_000.0)
    system.recover_replicas([victim])

    recovered = system.replicas[victim]
    t0 = system.sim.now
    deadline = t0 + missed * REJOIN_BOUND_MS_PER_VIEW
    while system.sim.now < deadline:
        system.sim.run(until=system.sim.now + 500.0)
        if recovered.view_lag() <= config.catchup_view_gap:
            break
    assert recovered.view_lag() <= config.catchup_view_gap, "never rejoined"
    assert system.oracle.safe
    return {
        "rejoin_ms": system.sim.now - t0,
        "replayed_blocks": len(recovered.ledger.executed),
        "base_height": recovered.ledger.base_height,
        "height": recovered.ledger.height(),
        "via_checkpoint": recovered.caught_up_via_checkpoint,
        "rounds": recovered.catchup.completed,
    }


@pytest.mark.parametrize("missed", MISSED)
def test_rejoin_latency_vs_missed_views(benchmark, missed):
    out = benchmark.pedantic(
        lambda: run_rejoin(missed, interval=50), rounds=1, iterations=1
    )
    print(
        f"\ncheckpoint rejoin after {missed} missed views: "
        f"{out['rejoin_ms']:.0f} sim-ms, replayed {out['replayed_blocks']} "
        f"blocks above base {out['base_height']}"
    )
    assert out["via_checkpoint"]
    # The transferred suffix is bounded by the interval + in-flight lag,
    # not by the miss count - that is the whole point of checkpoints.
    assert out["replayed_blocks"] < missed
    benchmark.extra_info.update(missed=missed, **out)


def test_checkpoint_transfer_beats_replay(benchmark):
    missed = MISSED[0]

    def measure():
        ckpt = run_rejoin(missed, interval=50)
        # Interval beyond the run length: peers never certify/compact,
        # so the rejoiner must pull the whole suffix - replay.
        replay = run_rejoin(missed, interval=1_000_000)
        return ckpt, replay

    ckpt, replay = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nafter {missed} missed views: checkpoint transfer replayed "
        f"{ckpt['replayed_blocks']} blocks in {ckpt['rejoin_ms']:.0f} sim-ms; "
        f"full replay executed {replay['replayed_blocks']} blocks in "
        f"{replay['rejoin_ms']:.0f} sim-ms"
    )
    assert ckpt["via_checkpoint"] and not replay["via_checkpoint"]
    # Replay work scales with the miss count; checkpoint work does not.
    assert replay["replayed_blocks"] > missed
    assert ckpt["replayed_blocks"] < replay["replayed_blocks"] / 2
    benchmark.extra_info.update(
        missed=missed,
        checkpoint_rejoin_ms=ckpt["rejoin_ms"],
        replay_rejoin_ms=replay["rejoin_ms"],
        checkpoint_blocks=ckpt["replayed_blocks"],
        replay_blocks=replay["replayed_blocks"],
    )
