"""Fig 7: throughput and latency on 11 world-wide regions (a: 256 B, b: 0 B).

Paper expectations (world regions, averaged over f):
  * Fig 7a (256 B): Damysus-C +35.1%/-24.2%, Damysus-A +18.4%/-14.0%,
    Damysus +61.6%/-36.6%, Chained-Damysus +35.2%/-24.8%.
  * Fig 7b (0 B): Damysus-C +33.1%/-23.3%, Damysus-A +38.2%/-27.0%,
    Damysus +78.6%/-43.0%, Chained-Damysus +32.2%/-23.7%.

Cross-continent latencies dominate here, so the relative gains are lower
than in the EU deployment - a shape this benchmark asserts explicitly.
"""

import pytest

from repro.analysis.metrics import mean, throughput_increase_percent
from repro.bench.experiments import fig6, fig7


@pytest.mark.parametrize("payload", [256, 0], ids=["fig7a_256B", "fig7b_0B"])
def test_fig7_world_regions(benchmark, bench_scale, payload):
    report = benchmark.pedantic(
        fig7,
        kwargs={
            "payload_bytes": payload,
            "thresholds": bench_scale["thresholds"],
            "views_per_run": bench_scale["views_per_run"],
            "repetitions": bench_scale["repetitions"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render())
    grid = report.data["grid"]
    for f in bench_scale["thresholds"]:
        hotstuff = grid[("hotstuff", f)]
        for name in ("damysus-c", "damysus-a", "damysus"):
            cell = grid[(name, f)]
            assert cell.throughput_kops > hotstuff.throughput_kops, (name, f)
            assert cell.latency_ms < hotstuff.latency_ms, (name, f)
        assert (
            grid[("chained-damysus", f)].throughput_kops
            > grid[("chained-hotstuff", f)].throughput_kops
        )


def test_world_gains_smaller_than_eu(benchmark, bench_scale):
    """WAN latency dominates world-wide: Damysus's relative gain shrinks."""
    thresholds = bench_scale["thresholds"][:2]

    def run_both():
        eu = fig6(payload_bytes=0, thresholds=thresholds, views_per_run=4, repetitions=1)
        world = fig7(payload_bytes=0, thresholds=thresholds, views_per_run=4, repetitions=1)
        return eu, world

    eu, world = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def avg_gain(report):
        grid = report.data["grid"]
        return mean(
            [
                throughput_increase_percent(
                    grid[("damysus", f)].throughput_kops,
                    grid[("hotstuff", f)].throughput_kops,
                )
                for f in thresholds
            ]
        )

    assert avg_gain(eu) > 0 and avg_gain(world) > 0
    benchmark.extra_info["eu_avg_gain_pct"] = round(avg_gain(eu), 1)
    benchmark.extra_info["world_avg_gain_pct"] = round(avg_gain(world), 1)
