"""Fig 8: improvements over (chained) HotStuff at a fixed system size N = 61.

3 x 20 + 1 = 61 = 2 x 30 + 1, so the non-hybrid protocols run with f = 20
and the hybrid 2f+1 protocols with f = 30: same fleet, 50% more tolerated
faults for the hybrids.  Paper expectations (tput/lat improvement):

    deployment  Damysus-C     Damysus-A      Damysus       Chained-Damysus
    Fig 6a      +1.9/+0.8     +28.0/-37.8    +9.9/+8.1     -11.0/-18.4
    Fig 6b      +20.6/+17.0   -4.7/-7.3      +58.0/+33.7   +40.9/+29.8
    Fig 7a      +31.6/+23.4   +31.3/+18.7    +52.3/+34.3   +27.4/+21.5
    Fig 7b      +27.7/+21.7   +35.6/+26.3    +73.8/+42.4   +29.7/+22.9

The transferable shape: at equal N, full Damysus still beats HotStuff on
throughput in every deployment, despite tolerating 10 more faults.
"""


from repro.bench.experiments import fig8


def test_fig8_n61(benchmark):
    report = benchmark.pedantic(
        fig8, kwargs={"views_per_run": 5, "repetitions": 1}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    for fig_name, cells in report.data.items():
        assert cells["hotstuff"].num_replicas == 61
        assert cells["damysus"].num_replicas == 61
        assert cells["chained-damysus"].num_replicas == 61
        # Equal fleet, more faults tolerated, still faster.
        assert (
            cells["damysus"].throughput_kops > cells["hotstuff"].throughput_kops
        ), fig_name
        assert cells["damysus"].latency_ms < cells["hotstuff"].latency_ms, fig_name
        benchmark.extra_info[f"{fig_name}_damysus_tput"] = round(
            cells["damysus"].throughput_kops, 2
        )
        benchmark.extra_info[f"{fig_name}_hotstuff_tput"] = round(
            cells["hotstuff"].throughput_kops, 2
        )
