"""Micro-benchmarks of the cryptographic substrate (real wall time).

Unlike the figure benchmarks (which measure *simulated* time), these
time the actual Python implementations: the from-scratch Schnorr scheme
over both parameter sets, the HMAC simulation scheme, the canonical
field encoding that underlies every signature payload, and the three
ways a 2f+1-signature quorum certificate can be checked - per signature,
jointly via the batch equation, and sharded across worker processes.
"""

import pytest

from repro.crypto.hashing import encode_fields, hash_fields
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.pool import VerifyPool, available_cpus
from repro.crypto.schnorr import GROUP_2048, GROUP_TEST, SchnorrScheme

MESSAGE = b"damysus-benchmark-message"

#: Fault thresholds matching the paper's figures; quorum size is 2f+1.
QUORUM_THRESHOLDS = (2, 10, 20)


@pytest.fixture(scope="module")
def schnorr_test():
    scheme = SchnorrScheme(GROUP_TEST)
    scheme.keygen(1)
    return scheme


@pytest.fixture(scope="module")
def schnorr_2048():
    scheme = SchnorrScheme(GROUP_2048)
    scheme.keygen(1)
    return scheme


@pytest.fixture(scope="module")
def hmac_scheme():
    scheme = HmacScheme()
    scheme.keygen(1)
    return scheme


def test_schnorr_sign_256(benchmark, schnorr_test):
    sig = benchmark(lambda: schnorr_test.sign(1, MESSAGE))
    assert schnorr_test.verify(MESSAGE, sig)


def test_schnorr_verify_256(benchmark, schnorr_test):
    sig = schnorr_test.sign(1, MESSAGE)
    assert benchmark(lambda: schnorr_test.verify(MESSAGE, sig))


def test_schnorr_sign_2048(benchmark, schnorr_2048):
    sig = benchmark(lambda: schnorr_2048.sign(1, MESSAGE))
    assert schnorr_2048.verify(MESSAGE, sig)


def test_schnorr_verify_2048(benchmark, schnorr_2048):
    sig = schnorr_2048.sign(1, MESSAGE)
    assert benchmark(lambda: schnorr_2048.verify(MESSAGE, sig))


def test_hmac_sign(benchmark, hmac_scheme):
    sig = benchmark(lambda: hmac_scheme.sign(1, MESSAGE))
    assert hmac_scheme.verify(MESSAGE, sig)


@pytest.fixture(scope="module")
def qc_pairs():
    """One quorum certificate's worth of pairs per fault threshold."""
    pairs_by_f = {}
    for f in QUORUM_THRESHOLDS:
        k = 2 * f + 1
        scheme = SchnorrScheme(GROUP_2048)
        for signer in range(k):
            scheme.keygen(signer)
        pairs_by_f[f] = (
            scheme,
            [(MESSAGE, scheme.sign(signer, MESSAGE)) for signer in range(k)],
        )
    return pairs_by_f


@pytest.mark.parametrize("f", QUORUM_THRESHOLDS)
def test_qc_verify_per_sig(benchmark, qc_pairs, f):
    scheme, pairs = qc_pairs[f]
    outcomes = benchmark(lambda: [scheme.verify(m, sig) for m, sig in pairs])
    assert all(outcomes)


@pytest.mark.parametrize("f", QUORUM_THRESHOLDS)
def test_qc_verify_batch(benchmark, qc_pairs, f):
    scheme, pairs = qc_pairs[f]
    outcomes = benchmark(lambda: scheme.verify_many(pairs))
    assert all(outcomes)


@pytest.mark.parametrize("f", QUORUM_THRESHOLDS)
def test_qc_verify_sharded(benchmark, qc_pairs, f):
    if available_cpus() < 2:
        pytest.skip("sharded verification needs at least 2 cores")
    scheme, pairs = qc_pairs[f]
    with VerifyPool(scheme, jobs=0, chunk=8) as pool:
        pool.verify_many(pairs[:1])  # absorb worker start-up cost
        outcomes = benchmark(lambda: pool.verify_many(pairs))
    assert all(outcomes)


def test_field_encoding(benchmark):
    fields = ("commitment", b"\x01" * 32, 12345, b"\x02" * 32, 12344, "prep_p")
    out = benchmark(lambda: encode_fields(fields))
    assert out


def test_field_hashing(benchmark):
    fields = ("block", b"\x01" * 32, 7, b"\x03" * 32, ())
    digest = benchmark(lambda: hash_fields(fields))
    assert len(digest) == 32
