"""Micro-benchmarks of the cryptographic substrate (real wall time).

Unlike the figure benchmarks (which measure *simulated* time), these
time the actual Python implementations: the from-scratch Schnorr scheme
over both parameter sets, the HMAC simulation scheme, and the canonical
field encoding that underlies every signature payload.
"""

import pytest

from repro.crypto.hashing import encode_fields, hash_fields
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.schnorr import GROUP_2048, GROUP_TEST, SchnorrScheme

MESSAGE = b"damysus-benchmark-message"


@pytest.fixture(scope="module")
def schnorr_test():
    scheme = SchnorrScheme(GROUP_TEST)
    scheme.keygen(1)
    return scheme


@pytest.fixture(scope="module")
def schnorr_2048():
    scheme = SchnorrScheme(GROUP_2048)
    scheme.keygen(1)
    return scheme


@pytest.fixture(scope="module")
def hmac_scheme():
    scheme = HmacScheme()
    scheme.keygen(1)
    return scheme


def test_schnorr_sign_256(benchmark, schnorr_test):
    sig = benchmark(lambda: schnorr_test.sign(1, MESSAGE))
    assert schnorr_test.verify(MESSAGE, sig)


def test_schnorr_verify_256(benchmark, schnorr_test):
    sig = schnorr_test.sign(1, MESSAGE)
    assert benchmark(lambda: schnorr_test.verify(MESSAGE, sig))


def test_schnorr_sign_2048(benchmark, schnorr_2048):
    sig = benchmark(lambda: schnorr_2048.sign(1, MESSAGE))
    assert schnorr_2048.verify(MESSAGE, sig)


def test_schnorr_verify_2048(benchmark, schnorr_2048):
    sig = schnorr_2048.sign(1, MESSAGE)
    assert benchmark(lambda: schnorr_2048.verify(MESSAGE, sig))


def test_hmac_sign(benchmark, hmac_scheme):
    sig = benchmark(lambda: hmac_scheme.sign(1, MESSAGE))
    assert hmac_scheme.verify(MESSAGE, sig)


def test_field_encoding(benchmark):
    fields = ("commitment", b"\x01" * 32, 12345, b"\x02" * 32, 12344, "prep_p")
    out = benchmark(lambda: encode_fields(fields))
    assert out


def test_field_hashing(benchmark):
    fields = ("block", b"\x01" * 32, 7, b"\x03" * 32, ())
    digest = benchmark(lambda: hash_fields(fields))
    assert len(digest) == 32
