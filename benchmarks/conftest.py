"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's Section 8
at a reduced default scale and prints the rendered table.  Set
``REPRO_BENCH_SCALE=paper`` to run the full parameter grid (all fault
thresholds f in {1,2,4,10,20,30,40}, more repetitions) - expect it to
take considerably longer.
"""

from __future__ import annotations

import os

import pytest

#: "small" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def thresholds() -> list[int]:
    """Fault thresholds for throughput/latency sweeps."""
    if SCALE == "paper":
        return [1, 2, 4, 10, 20, 30, 40]
    return [1, 2, 4, 10]


def repetitions() -> int:
    return 5 if SCALE == "paper" else 1


def views_per_run() -> int:
    return 30 if SCALE == "paper" else 6


@pytest.fixture
def bench_scale():
    return {
        "scale": SCALE,
        "thresholds": thresholds(),
        "repetitions": repetitions(),
        "views_per_run": views_per_run(),
    }
