"""View-change behaviour under faulty leaders.

Table 1 lists no separate view-change message count for the streamlined
protocols: their leader rotation IS the view change, so recovering from a
faulty leader costs one timeout plus the normal-case messages of the next
view.  This benchmark crashes f replicas (placed to lead early views) and
measures the throughput retained relative to a fault-free run - and that
safety holds throughout.
"""

import pytest

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.protocols.registry import PROTOCOL_ORDER
from repro.protocols.system import ConsensusSystem


def run(protocol: str, crash: bool) -> tuple[float, int]:
    # f = 2 so a single crashed replica owns 1/5 (2f+1) or 1/7 (3f+1) of
    # the leader schedule - a fault density under which retained
    # throughput is a meaningful view-change metric.
    config = SystemConfig(
        protocol=protocol,
        f=2,
        payload_bytes=0,
        block_size=100,
        seed=5,
        timeout_ms=150.0,
        costs=CostModel(),
    )
    system = ConsensusSystem(config)
    if crash:
        system.crash_replicas([1])  # leads every N-th view, starting at 1
    result = system.run(4_000.0)
    assert result.safe
    timeouts = sum(r.pacemaker.timeouts_fired for r in system.replicas)
    return result.throughput_kops, timeouts


@pytest.mark.parametrize("protocol", PROTOCOL_ORDER)
def test_throughput_retained_under_leader_crashes(benchmark, protocol):
    def measure():
        healthy, _ = run(protocol, crash=False)
        degraded, timeouts = run(protocol, crash=True)
        return healthy, degraded, timeouts

    healthy, degraded, timeouts = benchmark.pedantic(measure, rounds=1, iterations=1)
    retained = degraded / healthy if healthy else 0.0
    print(
        f"\n{protocol}: healthy {healthy:.2f} Kops/s, with crashed leader "
        f"{degraded:.2f} Kops/s ({retained:.0%} retained, {timeouts} timeouts)"
    )
    assert timeouts > 0  # the crash actually forced view changes
    assert degraded > 0  # liveness despite a permanently faulty leader
    # Progress must not collapse: the faulty leader owns at most 1/N of
    # the views; with backoff the retained throughput stays meaningful.
    assert retained > 0.1
    benchmark.extra_info["healthy_kops"] = round(healthy, 2)
    benchmark.extra_info["degraded_kops"] = round(degraded, 2)
    benchmark.extra_info["retained"] = round(retained, 3)
