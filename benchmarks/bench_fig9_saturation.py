"""Fig 9: throughput vs latency while raising the client load to saturation.

f = 1, 0 B payloads, 400-tx blocks, EU regions, client-measured metrics.
Paper shape: every Damysus variant saturates at a higher throughput and
lower latency than its HotStuff baseline; Chained-Damysus reaches the
highest maximum throughput of all; Damysus > Damysus-C > Damysus-A.
"""


from repro.bench.experiments import fig9


def _max_achieved(report, protocol):
    return max(
        value["achieved_kops"]
        for (name, _), value in report.data.items()
        if name == protocol
    )


def _latency_at_lightest(report, protocol):
    intervals = sorted({i for (name, i) in report.data if name == protocol})
    return report.data[(protocol, intervals[-1])]["latency_ms"]


def test_fig9_saturation(benchmark):
    report = benchmark.pedantic(
        fig9,
        kwargs={
            "intervals_ms": [2.0, 0.5, 0.2],
            "num_clients": 4,
            "duration_ms": 900.0,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render())
    # Saturation throughput ordering (paper Fig 9 conclusions).
    assert _max_achieved(report, "damysus") > _max_achieved(report, "hotstuff")
    assert _max_achieved(report, "chained-damysus") > _max_achieved(
        report, "chained-hotstuff"
    )
    # Pre-saturation latency: Damysus lower than HotStuff.
    assert _latency_at_lightest(report, "damysus") < _latency_at_lightest(
        report, "hotstuff"
    )
    for protocol in ("hotstuff", "damysus", "chained-hotstuff", "chained-damysus"):
        benchmark.extra_info[f"{protocol}_max_kops"] = round(
            _max_achieved(report, protocol), 2
        )


def test_fig9_latency_rises_with_load(benchmark):
    """Queueing: heavier offered load cannot lower client latency."""
    report = benchmark.pedantic(
        fig9,
        kwargs={
            "intervals_ms": [4.0, 0.25],
            "num_clients": 4,
            "duration_ms": 700.0,
            "protocols": ["damysus", "hotstuff"],
        },
        rounds=1,
        iterations=1,
    )
    for protocol in ("damysus", "hotstuff"):
        light = report.data[(protocol, 4.0)]["latency_ms"]
        heavy = report.data[(protocol, 0.25)]["latency_ms"]
        assert heavy > light, protocol
