"""Throughput/latency degradation under message loss.

The paper evaluates Damysus on reliable links; this benchmark measures
how gracefully HotStuff and Damysus degrade when links drop messages
(0-30% per-message loss, seeded and replayable).  Neither protocol
retransmits: a view whose critical message is lost times out and the
next leader retries, so loss converts throughput into view changes.
Damysus's shorter views (6 communication steps vs 8) expose fewer
messages per decision to the lossy network.
"""

import pytest

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.protocols.system import ConsensusSystem
from repro.sim.faults import FaultPlan

LOSS_LEVELS = [0.0, 0.1, 0.2, 0.3]

#: Virtual time simulated per (protocol, loss) cell.
RUN_MS = 20_000.0


def run_lossy(protocol: str, loss: float, seed: int = 7):
    config = SystemConfig(
        protocol=protocol,
        f=1,
        payload_bytes=0,
        block_size=100,
        seed=seed,
        timeout_ms=200.0,
        timeout_jitter=0.1,
        costs=CostModel(),
    )
    system = ConsensusSystem(config)
    if loss > 0.0:
        system.apply_fault_plan(FaultPlan().lossy_links(loss))
    result = system.run(RUN_MS)
    assert result.safe
    return result, system.monitor.messages_dropped


@pytest.mark.parametrize("protocol", ["hotstuff", "damysus"])
def test_throughput_degrades_gracefully_under_loss(benchmark, protocol):
    def measure():
        return {loss: run_lossy(protocol, loss) for loss in LOSS_LEVELS}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline, _ = results[0.0]
    print(f"\n{protocol}: loss -> throughput (latency), dropped msgs")
    for loss in LOSS_LEVELS:
        result, dropped = results[loss]
        retained = result.throughput_kops / baseline.throughput_kops
        print(
            f"  {loss:4.0%}  {result.throughput_kops:7.2f} Kops/s "
            f"({result.mean_latency_ms:6.1f} ms)  {retained:4.0%} retained, "
            f"{dropped} dropped"
        )
        benchmark.extra_info[f"kops_at_{int(loss * 100)}pct"] = round(
            result.throughput_kops, 2
        )
    # Liveness under 20% loss: commits still happen, just more slowly.
    heavy, _ = results[0.2]
    assert heavy.committed_blocks >= 1
    # Loss must actually cost throughput relative to the clean run.  The
    # 30% cell is a measured data point only: without retransmission it
    # sits near HotStuff's lossy-livelock threshold and may commit nothing.
    worst, _ = results[0.3]
    assert worst.throughput_kops < baseline.throughput_kops
