"""Ablations over the cost-model knobs DESIGN.md calls out.

The paper's headline numbers depend on three physical quantities the
simulator models explicitly; each ablation isolates one and checks the
mechanism behind Damysus's advantage:

* **crypto cost** - Damysus verifies f+1-signature certificates instead
  of 2f+1, so its relative advantage must grow as signature verification
  gets more expensive;
* **bandwidth** - leaders serialize N block copies, so the advantage of
  having fewer replicas must grow as links get slower;
* **block size** - per-block overhead amortizes, so throughput rises
  with block size for every protocol while the ordering is preserved.
"""

import dataclasses


from repro.bench.runner import ExperimentRunner
from repro.costs import CostModel


def damysus_gain(runner: ExperimentRunner, f: int = 4, **overrides) -> float:
    damysus = runner.run_cell("damysus", f, **overrides)
    hotstuff = runner.run_cell("hotstuff", f, **overrides)
    return damysus.throughput_kops / hotstuff.throughput_kops


def test_ablation_crypto_cost(benchmark):
    """Damysus's edge grows with signature-verification cost."""

    def sweep():
        gains = {}
        for verify_ms in (0.05, 0.25, 1.0):
            costs = dataclasses.replace(CostModel(), verify_ms=verify_ms)
            runner = ExperimentRunner(
                payload_bytes=0, views_per_run=5, repetitions=1, costs=costs
            )
            gains[verify_ms] = damysus_gain(runner)
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nthroughput gain vs verify cost: {gains}")
    assert all(gain > 1.0 for gain in gains.values())
    assert gains[1.0] > gains[0.05]
    for verify_ms, gain in gains.items():
        benchmark.extra_info[f"gain_at_{verify_ms}ms"] = round(gain, 3)


def test_ablation_leader_egress(benchmark):
    """Damysus keeps its edge across NIC speeds; the composition changes.

    When egress is cheap, the gain comes mostly from the two dropped
    phases; when the leader's per-byte egress cost dominates the view,
    the gain converges toward the replica-count ratio (3f+1)/(2f+1) -
    each leader pushes N block copies.  At f = 4 that ratio is
    13/9 ~ 1.44.
    """

    def sweep():
        gains = {}
        for egress_ms_per_byte in (1e-6, 8e-6, 8e-5):  # ~10G / 1G / 100M NIC
            costs = dataclasses.replace(
                CostModel(), serialize_per_byte_ms=egress_ms_per_byte
            )
            runner = ExperimentRunner(
                payload_bytes=256, views_per_run=5, repetitions=1, costs=costs
            )
            gains[egress_ms_per_byte] = damysus_gain(runner)
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nthroughput gain vs egress cost: {gains}")
    replica_ratio = 13 / 9  # (3f+1)/(2f+1) at f = 4
    assert all(gain > 1.2 for gain in gains.values())
    assert abs(gains[8e-5] - replica_ratio) < 0.25


def test_ablation_block_size(benchmark):
    """Bigger blocks raise throughput for all; ordering is preserved."""

    def sweep():
        out = {}
        for block_size in (40, 400, 1600):
            runner = ExperimentRunner(
                payload_bytes=0,
                block_size=block_size,
                views_per_run=5,
                repetitions=1,
            )
            dam = runner.run_cell("damysus", 2)
            hs = runner.run_cell("hotstuff", 2)
            out[block_size] = (dam.throughput_kops, hs.throughput_kops)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n(damysus, hotstuff) Kops/s by block size: {results}")
    for block_size, (dam, hs) in results.items():
        assert dam > hs, block_size
    assert results[1600][0] > results[40][0]  # amortization
    assert results[1600][1] > results[40][1]


def test_ablation_compact_qcs(benchmark):
    """Threshold (constant-size) certificates vs ECDSA signature lists.

    Original HotStuff uses threshold signatures; the DAMYSUS paper's
    implementation (and our default) uses signature lists.  At f = 10 a
    list certificate carries 21 x 64 B, so compacting shrinks wire bytes
    substantially - yet Damysus still wins, because its advantage comes
    from quorum size and phase count, not certificate representation.
    """

    def sweep():
        runner = ExperimentRunner(payload_bytes=0, views_per_run=5, repetitions=1)
        return {
            "hotstuff-list": runner.run_cell("hotstuff", 10),
            "hotstuff-compact": runner.run_cell("hotstuff", 10, compact_qcs=True),
            "damysus": runner.run_cell("damysus", 10),
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        "\n"
        + ", ".join(
            f"{name}: {cell.throughput_kops:.2f} Kops/s / {cell.latency_ms:.0f} ms"
            for name, cell in cells.items()
        )
    )
    compact, full = cells["hotstuff-compact"], cells["hotstuff-list"]
    assert compact.throughput_kops >= full.throughput_kops
    # Even with compact certificates, Damysus keeps its lead.
    assert cells["damysus"].throughput_kops > compact.throughput_kops
    benchmark.extra_info["compact_tput"] = round(compact.throughput_kops, 2)
    benchmark.extra_info["list_tput"] = round(full.throughput_kops, 2)


def test_ablation_fast_hotstuff_tradeoff(benchmark):
    """Section 2's alternative: Fast-HotStuff vs Damysus.

    Both have 2 core phases; Damysus additionally halves the replica
    count, so it must win on throughput - while Fast-HotStuff still beats
    3-phase HotStuff.  This quantifies what the trusted components buy
    beyond just dropping a phase.
    """

    def sweep():
        runner = ExperimentRunner(payload_bytes=256, views_per_run=5, repetitions=1)
        return {
            name: runner.run_cell(name, 4)
            for name in ("hotstuff", "fast-hotstuff", "damysus")
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        "\n"
        + ", ".join(
            f"{name}: {cell.throughput_kops:.2f} Kops/s / {cell.latency_ms:.0f} ms"
            for name, cell in cells.items()
        )
    )
    assert cells["fast-hotstuff"].throughput_kops > cells["hotstuff"].throughput_kops
    assert cells["damysus"].throughput_kops > cells["fast-hotstuff"].throughput_kops
    assert cells["damysus"].latency_ms < cells["fast-hotstuff"].latency_ms
